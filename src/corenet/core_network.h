// Simulated 5G core (AMF + AUSF + SMF + UPF) with the SEED diagnosis
// plugin (paper §6: "We extend the Magma 5G NSA core with a plugin").
//
// The core speaks real NAS wire bytes (nas/messages.h) to N concurrently
// attached devices (one UeContext per SUPI, in the spirit of Magma's
// shared-state AGW), runs real 5G-AKA (crypto/milenage.h), validates
// session requests against the subscriber database (producing the
// standardized SM causes), and — when SEED is enabled — classifies every
// failure with the Fig. 8 tree and ships assistance info over the DFlag
// Authentication Request channel. The DIAG-DNN uplink report path and the
// Fig. 6 fast data-plane reset are handled in the SMF hook.
//
// Multi-UE model: each attached device gets a UeId (0, 1, 2, ...) and a
// per-SUPI connection context — security context, GUTI, PDU sessions,
// fault overrides, the SEED downlink transfer state. UeId 0 is the
// "primary" UE; the id-less accessors below address it, so single-UE
// testbeds read exactly as before. The Fig. 8 tree is amortized across
// all attached UEs by an optional DiagnosisCache (enable_diag_cache), and
// the online-learning NetRecord is naturally shared: one subscriber's
// confirmed diagnosis warms the next subscriber's assistance.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/buffer_pool.h"
#include "common/bytes.h"
#include "crypto/milenage.h"
#include "crypto/security_context.h"
#include "corenet/subscriber.h"
#include "metrics/meters.h"
#include "nas/messages.h"
#include "ran/gnb.h"
#include "seed/infra_assist.h"
#include "seed/online_learning.h"
#include "seedproto/diag_payload.h"
#include "seedproto/failure_report.h"
#include "simcore/rng.h"
#include "simcore/simulator.h"

namespace seed {
namespace chaos {
class ChaosEngine;
}  // namespace chaos
}  // namespace seed

namespace seed::corenet {

/// Index of an attached device within one core instance.
using UeId = std::uint32_t;

/// Injectable failure conditions (per attached UE). Config-related faults
/// (outdated DNN etc.) are *not* listed here — they arise naturally when
/// the device's configuration disagrees with the SubscriberDb truth.
struct Faults {
  /// Core lost the SUPI<->GUTI mapping: GUTI registrations fail with #9.
  bool drop_guti_mapping = false;
  /// The device's serving PLMN became disallowed: #11 until the device
  /// registers via an allowed PLMN (config update or full search).
  bool plmn_rejected = false;
  /// Reject the next N registration attempts with #98 (state mismatch,
  /// transient desync that heals by itself).
  int transient_reject_count = 0;
  /// Cell/core congestion: #22 (c-plane) / #26 (d-plane) while set.
  bool congested = false;
  /// Wait the network advertises with congestion rejects (rides into
  /// FailureEvent::congestion_wait_s; 30 matches its default so runs
  /// that never touch the knob are byte-identical).
  std::uint16_t congestion_wait_s = 30;
  /// Swallow registration requests (device-side timeout path).
  bool timeout_registration = false;
  /// Unstandardized failure: reject with #111 on the wire, customized
  /// cause code via SEED assistance. Applies to the given plane.
  /// CP variant is cured by a fresh-identity (SUCI) registration — i.e.
  /// by whole-module control-plane resets (A1/B1/B2 or legacy attempt
  /// exhaustion). DP variant is cured when the DATA session comes up
  /// while another session exists (make-before-break A3 or the Fig. 6
  /// DIAG dance of B3) — i.e. by whole-module data-plane resets.
  std::optional<core::CustomCause> custom_cause_cp;
  std::optional<core::CustomCause> custom_cause_dp;
  /// Registration generation at DP-fault arming time: a *fresh*
  /// registration (A1/B1/B2 whole-module resets) also cures the DP
  /// custom fault, since it rebuilds all session contexts.
  std::uint64_t custom_dp_armed_reg_gen = 0;
  /// When the operator maps the custom failure to a known handling, the
  /// assistance carries this suggested action (§5.2); otherwise online
  /// learning takes over (§5.3).
  std::optional<proto::ResetAction> custom_action_known;
  /// Established sessions went stale (outdated gateway state): all flows
  /// fail until the session is re-established.
  bool stale_session = false;
};

struct PduSession {
  std::uint8_t psi = 0;
  std::string dnn;
  nas::PduSessionType type = nas::PduSessionType::kIpv4;
  nas::Ipv4 ue_addr;
  nas::Ipv4 dns_addr;
  std::uint64_t generation = 0;  // bumps on re-establishment
  bool stale = false;
  bool is_diag = false;
};

/// Core-wide counters for the overhead experiments (Fig. 11a); summed
/// over every attached UE.
struct CoreStats {
  std::uint64_t nas_rx = 0;
  std::uint64_t nas_tx = 0;
  std::uint64_t rejects_sent = 0;
  std::uint64_t diag_downlinks = 0;     // SEED assistance transmissions
  std::uint64_t diag_reports_rx = 0;    // SEED uplink reports parsed
  std::uint64_t auth_vectors = 0;
  std::uint64_t fast_dplane_resets = 0;
  // ----- adversarial-traffic accounting (decoder hardening + quarantine)
  std::uint64_t decode_rejects = 0;     // NAS wire bytes the decoder refused
  std::uint64_t malformed_rx = 0;       // semantic rejects past the decoder
  std::uint64_t quarantine_drops = 0;   // messages dropped while muted
  std::uint64_t suspect_reports_dropped = 0;  // learning-path rejections
};

/// Per-UE slice of the same counters (isolation tests, fleet benches).
struct UeStats {
  std::uint64_t nas_rx = 0;
  std::uint64_t nas_tx = 0;
  std::uint64_t rejects_sent = 0;
  std::uint64_t diag_downlinks = 0;
  std::uint64_t diag_reports_rx = 0;
  std::uint64_t decode_rejects = 0;
  std::uint64_t malformed_rx = 0;
  std::uint64_t quarantine_drops = 0;
  std::uint64_t suspect_reports_dropped = 0;
};

class CoreNetwork {
 public:
  /// `gnb` is the radio path of the primary UE (UeId 0); additional UEs
  /// attach with their own gNB link via the three-argument attach_device.
  CoreNetwork(sim::Simulator& sim, sim::Rng& rng, SubscriberDb& db,
              ran::Gnb& gnb, metrics::CpuMeter& cpu);
  ~CoreNetwork();

  /// Enables the SEED plugin (diagnosis assistance + report handling).
  void enable_seed(bool on) { seed_enabled_ = on; }
  /// Impaired-channel mode (testbed chaos): arms an ack-guard that
  /// retransmits downlink diag fragments whose synch-failure ACK never
  /// arrives. With no engine the guard is never armed and the downlink
  /// event sequence matches the unimpaired core exactly.
  void set_chaos(chaos::ChaosEngine* chaos) { chaos_ = chaos; }
  /// Online learner shared across the operator's network (§5.3) — and,
  /// on a multi-UE core, across every attached subscriber.
  void set_learner(core::NetRecord* learner) { learner_ = learner; }

  /// Shared diagnosis-result cache (§5.2 amortization): the Fig. 8 tree
  /// runs once per distinct failure shape instead of once per reject.
  /// Off by default; single-UE benches keep the tree on every event.
  void enable_diag_cache(bool on);
  /// Null unless enable_diag_cache(true) was called.
  const core::DiagnosisCache* diag_cache() const { return diag_cache_.get(); }

  // ----- wiring (N devices per core; UeId 0 is the primary)
  /// Attaches a device on its own gNB link; returns its UeId. Attaching
  /// a SUPI that is already attached rebinds that UE's link in place.
  /// `downlink` receives a view of the wire bytes; it must consume them
  /// during the call (the backing buffer is recycled afterwards).
  UeId attach_device(const std::string& supi, ran::Gnb& gnb,
                     std::function<void(BytesView)> downlink);
  /// Single-UE convenience: primary UE on the constructor's gNB.
  void attach_device(const std::string& supi,
                     std::function<void(BytesView)> downlink);
  void on_uplink(UeId ue, BytesView wire);
  void on_uplink(BytesView wire) { on_uplink(kPrimary, wire); }
  std::size_t ue_count() const { return ues_.size(); }
  /// SUPI of an attached UE (empty when out of range).
  const std::string& ue_supi(UeId ue) const;

  // ----- fault injection (per-UE; the id-less forms address the primary)
  Faults& faults(UeId ue);
  Faults& faults() { return faults(kPrimary); }
  /// Breaks the carrier LDNS (delivery failure class DNS) — carrier-wide,
  /// every attached UE resolves through the same LDNS.
  void set_dns_up(bool up) { dns_up_ = up; }
  bool dns_up() const { return dns_up_; }
  /// Installs an erroneous traffic policy (delivery failure class
  /// TCP/UDP blocking); the intended policy stays in the SubscriberDb.
  void set_effective_policy(UeId ue, const TrafficPolicy& p);
  void set_effective_policy(const TrafficPolicy& p) {
    set_effective_policy(kPrimary, p);
  }
  const TrafficPolicy& effective_policy(UeId ue = kPrimary) const;
  /// AMF-side detection of a silent device (SIM/modem channel fault):
  /// feeds the passive no-response branch of Fig. 8, which requests a
  /// hardware reset over the assistance downlink.
  void note_unresponsive(UeId ue);
  /// Marks established sessions stale (outdated gateway state).
  void make_sessions_stale(UeId ue);
  void make_sessions_stale() { make_sessions_stale(kPrimary); }
  /// SMF loses the device's session contexts (Table 1 #50-style state
  /// desync); the device must re-request its sessions.
  void drop_sessions(UeId ue);
  void drop_sessions() { drop_sessions(kPrimary); }
  /// Bumps on every completed registration.
  std::uint64_t registration_generation(UeId ue = kPrimary) const;

  // ----- UPF queries (used by the transport engine)
  bool session_active(UeId ue, std::uint8_t psi) const;
  bool session_active(std::uint8_t psi) const {
    return session_active(kPrimary, psi);
  }
  const PduSession* session(UeId ue, std::uint8_t psi) const;
  const PduSession* session(std::uint8_t psi) const {
    return session(kPrimary, psi);
  }
  bool upf_allows(UeId ue, nas::IpProtocol proto, std::uint16_t port) const;
  bool upf_allows(nas::IpProtocol proto, std::uint16_t port) const {
    return upf_allows(kPrimary, proto, port);
  }
  /// DNS resolution works iff the queried server is the live carrier LDNS
  /// or the public backup server SEED may configure.
  bool dns_resolves(UeId ue, const nas::Ipv4& server) const;
  bool dns_resolves(const nas::Ipv4& server) const {
    return dns_resolves(kPrimary, server);
  }

  // ----- SIM record upload (online learning OTA path, Algorithm 1 l.6)
  /// UeId-aware form: records from an unregistered or quarantined peer
  /// never reach the shared learner (they are counted as suspect instead).
  void upload_sim_records(UeId ue,
                          const std::vector<core::SimRecordStore::Entry>& e);
  void upload_sim_records(const std::vector<core::SimRecordStore::Entry>& e) {
    upload_sim_records(kPrimary, e);
  }

  /// True while the UE sits in the malformed-traffic penalty box.
  bool peer_quarantined(UeId ue) const;

  // ----- stats
  const CoreStats& stats() const { return stats_; }
  const UeStats& ue_stats(UeId ue) const;
  /// Fig. 12 downlink instrumentation: per-transfer preparation and
  /// transmission latencies in milliseconds (core-wide, append order).
  const std::vector<double>& diag_prep_ms() const { return diag_prep_ms_; }
  const std::vector<double>& diag_trans_ms() const { return diag_trans_ms_; }
  bool device_registered(UeId ue = kPrimary) const;

  /// Carrier LDNS / backup DNS addresses.
  static nas::Ipv4 carrier_dns() { return nas::Ipv4{{10, 45, 0, 1}}; }
  static nas::Ipv4 backup_dns() { return nas::Ipv4{{9, 9, 9, 9}}; }

 private:
  static constexpr UeId kPrimary = 0;

  /// Everything the AMF/SMF/SEED plugin keeps per attached subscriber.
  struct UeContext {
    UeContext(sim::Simulator& sim, UeId id) : id(id), frag_guard(sim) {}

    UeId id;
    std::string supi;
    ran::Gnb* gnb = nullptr;
    std::function<void(BytesView)> downlink;

    // AMF state
    bool registered = false;
    std::uint64_t reg_gen = 0;
    bool awaiting_smc = false;
    bool registration_pending = false;
    std::optional<Bytes> expected_res;

    // SMF sessions
    std::map<std::uint8_t, PduSession> sessions;
    std::uint8_t next_ip_suffix = 2;

    // SEED plugin state
    std::optional<crypto::SecurityContext> seed_ctx;
    std::vector<std::array<std::uint8_t, 16>> pending_frags;
    std::size_t next_frag = 0;
    /// True while the latest fragment awaits its synch-failure ACK; a
    /// duplicated fragment earns two ACKs and only the first advances.
    bool frag_outstanding = false;
    int frag_retries = 0;
    sim::TimePoint diag_prep_start{};
    sim::TimePoint diag_send_start{};
    proto::DiagDnnCodec::Reassembler report_reassembler;
    /// Bytes of the last successfully processed report frame: an exact
    /// replay (retransmit after a lost ACK) fails the integrity check
    /// benignly and must not count as malformed.
    Bytes last_report_frame;
    sim::Timer frag_guard;  // armed only when a chaos engine is attached

    // UPF / faults
    Faults faults;
    TrafficPolicy effective_policy;

    // Malformed-traffic penalty box (§ threat model in DESIGN.md): every
    // kMalformedStrikeThreshold semantic rejects earn a strike, each
    // strike doubles the mute window. A muted peer's covert-channel
    // traffic is dropped silently, so its modem-side ack guards expire
    // and the applet degrades to the local plan.
    std::uint64_t malformed_count = 0;
    std::uint32_t malformed_strikes = 0;
    sim::TimePoint muted_until{};

    UeStats stats;
  };

  // message handlers (each bound to the UE whose link carried the bytes)
  void handle_registration(UeContext& ue, const nas::RegistrationRequest& m);
  void handle_auth_response(UeContext& ue,
                            const nas::AuthenticationResponse& m);
  void handle_auth_failure(UeContext& ue, const nas::AuthenticationFailure& m);
  void handle_smc_complete(UeContext& ue);
  void handle_service_request(UeContext& ue, const nas::ServiceRequest& m);
  void handle_pdu_request(UeContext& ue,
                          const nas::PduSessionEstablishmentRequest& m);
  void handle_pdu_release(UeContext& ue,
                          const nas::PduSessionReleaseRequest& m);
  void handle_pdu_modification(UeContext& ue,
                               const nas::PduSessionModificationRequest& m);

  // SEED plugin
  void assist(UeContext& ue, const core::FailureEvent& event);
  void send_diag_fragments(UeContext& ue);
  void on_frag_guard(UeContext& ue);
  void handle_diag_report(UeContext& ue, const proto::FailureReport& report,
                          const nas::SmHeader& hdr);

  // quarantine / penalty box
  bool quarantined(const UeContext& ue) const;
  void note_malformed(UeContext& ue, const char* what);

  // helpers
  void send(UeContext& ue, const nas::NasMessage& msg);
  void reject_registration(UeContext& ue, std::uint8_t cause,
                           std::optional<std::uint32_t> t3502 = {});
  void reject_pdu(UeContext& ue, const nas::SmHeader& hdr, std::uint8_t cause,
                  std::optional<std::uint32_t> backoff = {});
  Subscriber* sub_of(const UeContext& ue) { return db_.find(ue.supi); }
  std::optional<proto::ConfigPayload> config_for(
      nas::Plane plane, std::uint8_t cause, const Subscriber& sub) const;
  void start_authentication(UeContext& ue, bool for_registration);
  void complete_registration(UeContext& ue);
  UeContext& context(UeId ue);
  const UeContext& context(UeId ue) const;

  sim::Simulator& sim_;
  sim::Rng& rng_;
  SubscriberDb& db_;
  ran::Gnb& gnb_;  // primary UE's radio path (back-compat attach)
  metrics::CpuMeter& cpu_;
  core::NetRecord* learner_ = nullptr;
  bool seed_enabled_ = false;

  /// Attached UEs, indexed by UeId (unique_ptr: contexts own a Timer and
  /// must stay address-stable for the callbacks that capture them).
  std::vector<std::unique_ptr<UeContext>> ues_;
  std::map<std::string, UeId, std::less<>> supi_to_ue_;

  chaos::ChaosEngine* chaos_ = nullptr;
  bool dns_up_ = true;

  /// Shared diagnosis-result cache; the db mutation epoch it was last
  /// validated against drives explicit invalidation.
  std::unique_ptr<core::DiagnosisCache> diag_cache_;
  std::uint64_t diag_cache_epoch_ = 0;

  CoreStats stats_;
  std::vector<double> diag_prep_ms_;
  std::vector<double> diag_trans_ms_;

  /// Reusable wire buffers for send(): encode_message_into() writes into a
  /// recycled buffer, so steady-state TX performs no allocations.
  BufferPool tx_pool_;
  /// Collab-path scratch (synchronous use only, never captured): plaintext
  /// assistance encode, protected downlink frame, decrypted uplink report.
  Bytes diag_scratch_;
  Bytes frame_scratch_;
  Bytes collab_plain_;
};

}  // namespace seed::corenet
