// Simulated 5G core (AMF + AUSF + SMF + UPF) with the SEED diagnosis
// plugin (paper §6: "We extend the Magma 5G NSA core with a plugin").
//
// The core speaks real NAS wire bytes (nas/messages.h) to one device per
// link, runs real 5G-AKA (crypto/milenage.h), validates session requests
// against the subscriber database (producing the standardized SM causes),
// and — when SEED is enabled — classifies every failure with the Fig. 8
// tree and ships assistance info over the DFlag Authentication Request
// channel. The DIAG-DNN uplink report path and the Fig. 6 fast data-plane
// reset are handled in the SMF hook.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "crypto/milenage.h"
#include "crypto/security_context.h"
#include "corenet/subscriber.h"
#include "metrics/meters.h"
#include "nas/messages.h"
#include "ran/gnb.h"
#include "seed/infra_assist.h"
#include "seed/online_learning.h"
#include "seedproto/diag_payload.h"
#include "seedproto/failure_report.h"
#include "simcore/rng.h"
#include "simcore/simulator.h"

namespace seed {
namespace chaos {
class ChaosEngine;
}  // namespace chaos
}  // namespace seed

namespace seed::corenet {

/// Injectable failure conditions (per subscriber). Config-related faults
/// (outdated DNN etc.) are *not* listed here — they arise naturally when
/// the device's configuration disagrees with the SubscriberDb truth.
struct Faults {
  /// Core lost the SUPI<->GUTI mapping: GUTI registrations fail with #9.
  bool drop_guti_mapping = false;
  /// The device's serving PLMN became disallowed: #11 until the device
  /// registers via an allowed PLMN (config update or full search).
  bool plmn_rejected = false;
  /// Reject the next N registration attempts with #98 (state mismatch,
  /// transient desync that heals by itself).
  int transient_reject_count = 0;
  /// Cell/core congestion: #22 (c-plane) / #26 (d-plane) while set.
  bool congested = false;
  /// Swallow registration requests (device-side timeout path).
  bool timeout_registration = false;
  /// Unstandardized failure: reject with #111 on the wire, customized
  /// cause code via SEED assistance. Applies to the given plane.
  /// CP variant is cured by a fresh-identity (SUCI) registration — i.e.
  /// by whole-module control-plane resets (A1/B1/B2 or legacy attempt
  /// exhaustion). DP variant is cured when the DATA session comes up
  /// while another session exists (make-before-break A3 or the Fig. 6
  /// DIAG dance of B3) — i.e. by whole-module data-plane resets.
  std::optional<core::CustomCause> custom_cause_cp;
  std::optional<core::CustomCause> custom_cause_dp;
  /// Registration generation at DP-fault arming time: a *fresh*
  /// registration (A1/B1/B2 whole-module resets) also cures the DP
  /// custom fault, since it rebuilds all session contexts.
  std::uint64_t custom_dp_armed_reg_gen = 0;
  /// When the operator maps the custom failure to a known handling, the
  /// assistance carries this suggested action (§5.2); otherwise online
  /// learning takes over (§5.3).
  std::optional<proto::ResetAction> custom_action_known;
  /// Established sessions went stale (outdated gateway state): all flows
  /// fail until the session is re-established.
  bool stale_session = false;
};

struct PduSession {
  std::uint8_t psi = 0;
  std::string dnn;
  nas::PduSessionType type = nas::PduSessionType::kIpv4;
  nas::Ipv4 ue_addr;
  nas::Ipv4 dns_addr;
  std::uint64_t generation = 0;  // bumps on re-establishment
  bool stale = false;
  bool is_diag = false;
};

/// Counters for the overhead experiments (Fig. 11a).
struct CoreStats {
  std::uint64_t nas_rx = 0;
  std::uint64_t nas_tx = 0;
  std::uint64_t rejects_sent = 0;
  std::uint64_t diag_downlinks = 0;     // SEED assistance transmissions
  std::uint64_t diag_reports_rx = 0;    // SEED uplink reports parsed
  std::uint64_t auth_vectors = 0;
  std::uint64_t fast_dplane_resets = 0;
};

class CoreNetwork {
 public:
  CoreNetwork(sim::Simulator& sim, sim::Rng& rng, SubscriberDb& db,
              ran::Gnb& gnb, metrics::CpuMeter& cpu);

  /// Enables the SEED plugin (diagnosis assistance + report handling).
  void enable_seed(bool on) { seed_enabled_ = on; }
  /// Impaired-channel mode (testbed chaos): arms an ack-guard that
  /// retransmits downlink diag fragments whose synch-failure ACK never
  /// arrives. With no engine the guard is never armed and the downlink
  /// event sequence matches the unimpaired core exactly.
  void set_chaos(chaos::ChaosEngine* chaos) { chaos_ = chaos; }
  /// Online learner shared across the operator's network (§5.3).
  void set_learner(core::NetRecord* learner) { learner_ = learner; }

  // ----- wiring (one device per core instance in this testbed)
  void attach_device(const std::string& supi,
                     std::function<void(Bytes)> downlink);
  void on_uplink(BytesView wire);

  // ----- fault injection
  Faults& faults() { return faults_; }
  /// Breaks the carrier LDNS (delivery failure class DNS).
  void set_dns_up(bool up) { dns_up_ = up; }
  bool dns_up() const { return dns_up_; }
  /// Installs an erroneous traffic policy (delivery failure class
  /// TCP/UDP blocking); the intended policy stays in the SubscriberDb.
  void set_effective_policy(const TrafficPolicy& p) { effective_policy_ = p; }
  const TrafficPolicy& effective_policy() const { return effective_policy_; }
  /// Marks established sessions stale (outdated gateway state).
  void make_sessions_stale();
  /// SMF loses the device's session contexts (Table 1 #50-style state
  /// desync); the device must re-request its sessions.
  void drop_sessions() { sessions_.clear(); }
  /// Bumps on every completed registration.
  std::uint64_t registration_generation() const { return reg_gen_; }

  // ----- UPF queries (used by the transport engine)
  bool session_active(std::uint8_t psi) const;
  const PduSession* session(std::uint8_t psi) const;
  bool upf_allows(nas::IpProtocol proto, std::uint16_t port) const;
  /// DNS resolution works iff the queried server is the live carrier LDNS
  /// or the public backup server SEED may configure.
  bool dns_resolves(const nas::Ipv4& server) const;

  // ----- SIM record upload (online learning OTA path, Algorithm 1 l.6)
  void upload_sim_records(const std::vector<core::SimRecordStore::Entry>& e);

  // ----- stats
  const CoreStats& stats() const { return stats_; }
  /// Fig. 12 downlink instrumentation: per-transfer preparation and
  /// transmission latencies in milliseconds.
  const std::vector<double>& diag_prep_ms() const { return diag_prep_ms_; }
  const std::vector<double>& diag_trans_ms() const { return diag_trans_ms_; }
  bool device_registered() const { return registered_; }

  /// Carrier LDNS / backup DNS addresses.
  static nas::Ipv4 carrier_dns() { return nas::Ipv4{{10, 45, 0, 1}}; }
  static nas::Ipv4 backup_dns() { return nas::Ipv4{{9, 9, 9, 9}}; }

 private:
  // message handlers
  void handle_registration(const nas::RegistrationRequest& m);
  void handle_auth_response(const nas::AuthenticationResponse& m);
  void handle_auth_failure(const nas::AuthenticationFailure& m);
  void handle_smc_complete();
  void handle_service_request(const nas::ServiceRequest& m);
  void handle_pdu_request(const nas::PduSessionEstablishmentRequest& m);
  void handle_pdu_release(const nas::PduSessionReleaseRequest& m);
  void handle_pdu_modification(const nas::PduSessionModificationRequest& m);

  // SEED plugin
  void assist(const core::FailureEvent& event);
  void send_diag_fragments();
  void on_frag_guard();
  void handle_diag_report(const proto::FailureReport& report,
                          const nas::SmHeader& hdr);

  // helpers
  void send(const nas::NasMessage& msg);
  void reject_registration(std::uint8_t cause,
                           std::optional<std::uint32_t> t3502 = {});
  void reject_pdu(const nas::SmHeader& hdr, std::uint8_t cause,
                  std::optional<std::uint32_t> backoff = {});
  Subscriber* current_sub();
  std::optional<proto::ConfigPayload> config_for(
      nas::Plane plane, std::uint8_t cause, const Subscriber& sub) const;
  void start_authentication(bool for_registration);
  void complete_registration();

  sim::Simulator& sim_;
  sim::Rng& rng_;
  SubscriberDb& db_;
  ran::Gnb& gnb_;
  metrics::CpuMeter& cpu_;
  core::NetRecord* learner_ = nullptr;
  bool seed_enabled_ = false;

  std::string supi_;
  std::function<void(Bytes)> downlink_;

  // AMF per-UE state
  bool registered_ = false;
  std::uint64_t reg_gen_ = 0;
  bool awaiting_smc_ = false;
  bool registration_pending_ = false;
  std::optional<Bytes> expected_res_;

  // SMF sessions
  std::map<std::uint8_t, PduSession> sessions_;
  std::uint8_t next_ip_suffix_ = 2;

  // SEED plugin state
  std::optional<crypto::SecurityContext> seed_ctx_;
  std::vector<std::array<std::uint8_t, 16>> pending_frags_;
  std::size_t next_frag_ = 0;
  /// True while the latest fragment awaits its synch-failure ACK; a
  /// duplicated fragment earns two ACKs and only the first advances.
  bool frag_outstanding_ = false;
  int frag_retries_ = 0;
  sim::TimePoint diag_prep_start_{};
  sim::TimePoint diag_send_start_{};
  proto::DiagDnnCodec::Reassembler report_reassembler_;
  chaos::ChaosEngine* chaos_ = nullptr;
  sim::Timer frag_guard_;  // armed only when a chaos engine is attached

  // UPF / faults
  Faults faults_;
  TrafficPolicy effective_policy_;
  bool dns_up_ = true;

  CoreStats stats_;
  std::vector<double> diag_prep_ms_;
  std::vector<double> diag_trans_ms_;
};

}  // namespace seed::corenet
