// The SEED SIM applet (paper §4, §6: "1244 lines of Java with two
// modules" on a Javacard eSIM — here modeled in C++ with the same split).
//
// Diagnostic module: receives infrastructure assistance through the modem
// APDU interface (DFlag Authentication Requests), reassembles and
// decrypts fragments, stores cause tables and parsed configs; receives
// app/OS failure reports through the carrier app.
//
// Decision module: maps diagnoses to multi-tier reset plans (Table 3),
// applies the 2 s transient wait, the 5 s conflict window and per-action
// rate limits (§4.4.2), executes plans through ModemControl, runs the
// online-learning trial sequence for unknown causes (§5.3), and keeps
// everything within the eSIM storage budget (180 KB EEPROM / 8 KB RAM).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "crypto/milenage.h"
#include "crypto/security_context.h"
#include "modem/sim_iface.h"
#include "nas/causes.h"
#include "seed/decision.h"
#include "seed/online_learning.h"
#include "seedproto/diag_payload.h"
#include "seedproto/failure_report.h"
#include "simcore/rng.h"
#include "simcore/simulator.h"

namespace seed::chaos {
class ChaosEngine;
}  // namespace seed::chaos

namespace seed::applet {

struct AppletStats {
  std::uint64_t auths_performed = 0;
  std::uint64_t diags_received = 0;
  std::uint64_t fragments_acked = 0;
  std::uint64_t plans_executed = 0;
  std::uint64_t actions_run = 0;
  std::uint64_t actions_rate_limited = 0;
  std::uint64_t plans_cancelled_by_recovery = 0;
  std::uint64_t reports_received = 0;
  std::uint64_t reports_suppressed_conflict = 0;
  std::uint64_t reports_sent_uplink = 0;
  std::uint64_t user_notifications = 0;
  std::uint64_t learning_trials = 0;
  // chaos-hardening counters (zero on unimpaired runs)
  std::uint64_t actions_retried = 0;
  std::uint64_t tier_escalations = 0;
  std::uint64_t applet_crashes = 0;
  std::uint64_t uplink_report_failures = 0;
  /// AUTN-channel downlinks the applet refused (reassembly reject,
  /// integrity failure, or undecodable assistance payload); benign lost-
  /// ACK retransmits are excluded.
  std::uint64_t malformed_downlinks = 0;
};

class SeedApplet : public modem::SimCard {
 public:
  SeedApplet(sim::Simulator& sim, sim::Rng& rng, modem::SimProfile profile,
             const crypto::Key128& k, const crypto::Key128& opc,
             const crypto::Key128& seed_key);

  // ----- wiring
  void set_modem_control(modem::ModemControl* control) { control_ = control; }
  /// OTA upload of SIMRecord to the infrastructure (Algorithm 1 line 6).
  void set_record_uploader(
      std::function<void(const std::vector<core::SimRecordStore::Entry>&)>
          fn) {
    upload_records_ = std::move(fn);
  }
  /// End-to-end service health probe (device-level: registered + session
  /// active + data deliverable).
  void set_recovery_probe(std::function<bool()> fn) {
    recovery_probe_ = std::move(fn);
  }
  /// Failures requiring user action (expired plan etc.) surface here.
  void set_user_notifier(std::function<void(std::string)> fn) {
    notify_user_ = std::move(fn);
  }
  /// Chaos fault injection (testbed-only); with no engine attached the
  /// applet never crashes and every code path matches the seed behaviour.
  void set_chaos(chaos::ChaosEngine* chaos) { chaos_ = chaos; }
  /// Retry/backoff/escalation behaviour for failed reset actions. The
  /// default (RetryPolicy::legacy()) reproduces the original
  /// one-attempt-per-action semantics exactly.
  void set_retry_policy(const core::RetryPolicy& policy) {
    retry_policy_ = policy;
  }
  const core::RetryPolicy& retry_policy() const { return retry_policy_; }
  /// Fired once when the applet is declared dead (crash budget exhausted);
  /// the device degrades to legacy handling.
  void set_death_notifier(std::function<void()> fn) {
    on_dead_ = std::move(fn);
  }
  bool dead() const { return dead_; }
  bool collab_uplink_dead() const { return collab_uplink_dead_; }

  /// SEED on/off (off = plain legacy SIM for baselines).
  void enable_seed(bool on) { enabled_ = on; }
  bool seed_enabled() const { return enabled_; }

  core::DeviceMode mode() const { return mode_; }

  // ----- SimCard (modem-facing APDU surface)
  const modem::SimProfile& profile() const override { return profile_; }
  modem::AuthResult authenticate(
      const std::array<std::uint8_t, 16>& rand,
      const std::array<std::uint8_t, 16>& autn) override;

  // ----- carrier-app APDU surface
  /// Carrier app detected root: enables SEED-R (paper §4.4.1).
  void on_root_status(bool rooted);
  /// App failure report (paper §4.3.2 API: type, direction, address).
  void report_failure(const proto::FailureReport& report);
  /// Android data-stall notification (Connectivity Diagnostics).
  void on_os_data_stall();
  /// Device-side notification that service recovered (cancels pending
  /// transient-wait resets).
  void notify_recovered();

  // ----- introspection
  const AppletStats& stats() const { return stats_; }
  /// Fig. 12 uplink instrumentation (milliseconds).
  const std::vector<double>& report_prep_ms() const { return report_prep_ms_; }
  const std::vector<double>& report_trans_ms() const {
    return report_trans_ms_;
  }
  /// EEPROM usage: applet code + cause registry + record store + configs.
  std::size_t storage_used_bytes() const;
  const core::SimRecordStore& records() const { return records_; }

 private:
  void handle_diag(const proto::DiagInfo& info);
  void apply_config(const proto::ConfigPayload& config);
  void execute_plan(core::HandlingPlan plan, std::uint8_t cause);
  void run_actions(std::vector<proto::ResetAction> actions, std::size_t idx,
                   int attempt, bool learning, std::uint8_t cause,
                   bool escalated);
  void issue_action(proto::ResetAction action,
                    modem::ModemControl::Done done);
  bool rate_limited(proto::ResetAction a) const;
  void charge_rate_limit(proto::ResetAction a);
  void refund_rate_limit(proto::ResetAction a, sim::TimePoint issued_at);
  void send_report_uplink(const proto::FailureReport& report);
  /// Chaos: true when the applet is dead or mid-restart after a crash.
  bool applet_down() const;
  void crash();
  void note_malformed_downlink(const char* what);

  sim::Simulator& sim_;
  sim::Rng& rng_;
  modem::SimProfile profile_;
  crypto::Milenage milenage_;
  crypto::SecurityContext seed_ctx_;
  modem::ModemControl* control_ = nullptr;

  bool enabled_ = true;
  core::DeviceMode mode_ = core::DeviceMode::kSeedU;

  proto::AutnCodec::Reassembler reassembler_;
  /// Bytes of the last successfully processed assistance frame: an exact
  /// replay (core retransmit after a lost synch-failure ACK) fails the
  /// integrity check benignly and must not count as malformed.
  Bytes last_diag_frame_;
  /// Collab-path scratch (synchronous use only, never captured): decrypted
  /// downlink assistance, plaintext report encode, protected uplink frame.
  Bytes plain_scratch_;
  Bytes report_scratch_;
  Bytes frame_scratch_;
  core::SimRecordStore records_;
  std::map<proto::ResetAction, sim::TimePoint> last_action_time_;
  sim::TimePoint last_cause_time_{sim::Duration{-1000000000}};
  sim::Timer pending_wait_;
  bool plan_in_flight_ = false;
  /// Set when the latest assistance carried a data-plane config: B3 then
  /// runs as a *modification* with the new config rather than a reset.
  std::optional<std::string> pending_dp_config_dnn_;

  std::function<void(const std::vector<core::SimRecordStore::Entry>&)>
      upload_records_;
  std::function<bool()> recovery_probe_;
  std::function<void(std::string)> notify_user_;

  AppletStats stats_;
  std::vector<double> report_prep_ms_;
  std::vector<double> report_trans_ms_;

  // ----- chaos hardening (inert under RetryPolicy::legacy() + no engine:
  // the extra timers are only armed by retries/deadlines, so unimpaired
  // runs keep the event loop byte-identical)
  core::RetryPolicy retry_policy_;
  chaos::ChaosEngine* chaos_ = nullptr;
  std::function<void()> on_dead_;
  bool dead_ = false;
  sim::TimePoint down_until_{};  // restart window after a crash
  int crash_count_ = 0;
  int uplink_fail_streak_ = 0;
  bool collab_uplink_dead_ = false;
  sim::Timer retry_timer_;
  sim::Timer action_deadline_;
  /// Bumped on every action issue and on first completion; guards against
  /// a late AT response racing the deadline-driven escalation.
  std::uint64_t action_epoch_ = 0;
};

}  // namespace seed::applet
