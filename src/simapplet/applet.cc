#include "simapplet/applet.h"

#include <algorithm>

#include "chaos/chaos.h"
#include "common/codec.h"
#include "common/params.h"
#include "obs/registry.h"
#include "obs/trace.h"
#include "seed/verdict.h"
#include "simcore/log.h"

namespace seed::applet {

namespace {
constexpr std::uint8_t kSeedBearer = 7;
// Emulated footprint of the applet code itself (the paper's applet is
// 1244 lines of Java; Javacard bytecode ~30 KB installed).
constexpr std::size_t kAppletCodeBytes = 30 * 1024;

// A SIM-local delivery plan is a diagnosis in its own right (SEED-U, or
// SEED-R degraded off the collab uplink): record what the SIM decided.
void emit_local_plan_verdict(const core::HandlingPlan& plan) {
  if (!obs::enabled()) return;
  core::DiagnosisVerdict v;
  v.plane = 1;
  v.kind = core::VerdictKind::kLocalPlan;
  v.source = core::VerdictSource::kSim;
  v.action = plan.actions.empty()
                 ? 0
                 : static_cast<std::uint8_t>(plan.actions.front());
  core::emit_verdict(v);
}
}  // namespace

SeedApplet::SeedApplet(sim::Simulator& sim, sim::Rng& rng,
                       modem::SimProfile profile, const crypto::Key128& k,
                       const crypto::Key128& opc,
                       const crypto::Key128& seed_key)
    : sim_(sim),
      rng_(rng),
      profile_(std::move(profile)),
      milenage_(crypto::Milenage::from_opc(k, opc)),
      seed_ctx_(seed_key, kSeedBearer),
      pending_wait_(sim),
      retry_timer_(sim),
      action_deadline_(sim) {}

modem::AuthResult SeedApplet::authenticate(
    const std::array<std::uint8_t, 16>& rand,
    const std::array<std::uint8_t, 16>& autn) {
  ++stats_.auths_performed;

  if (proto::is_dflag(rand)) {
    if (!enabled_ || applet_down()) {
      // A legacy SIM — or a crashed/dead applet — runs Milenage on the
      // garbage RAND and fails the MAC.
      modem::AuthResult r;
      r.kind = modem::AuthResult::Kind::kMacFailure;
      return r;
    }
    // SEED downlink fragment: do not verify the key; parse the AUTH
    // (paper §4.5). ACK via synchronization failure.
    ++stats_.fragments_acked;
    if (const auto frame = reassembler_.feed_view(autn)) {
      if (seed_ctx_.unprotect_into(*frame, crypto::Direction::kDownlink,
                                   plain_scratch_)) {
        if (const auto info = proto::DiagInfo::decode(plain_scratch_)) {
          last_diag_frame_.assign(frame->begin(), frame->end());
          // Hand off to the decision module after SIM processing time.
          const proto::DiagInfo copy = *info;
          sim_.schedule_after(sim::ms(4), [this, copy] { handle_diag(copy); });
        } else {
          note_malformed_downlink("undecodable assistance payload");
        }
      } else if (frame->size() == last_diag_frame_.size() &&
                 std::equal(frame->begin(), frame->end(),
                            last_diag_frame_.begin())) {
        // Exact replay of the frame just consumed: the core retransmitted
        // after a lost synch-failure ACK. The ACK below re-acknowledges
        // it; nothing malformed about the peer.
      } else {
        note_malformed_downlink("integrity-failed assistance frame");
      }
    } else if (reassembler_.last_rejected()) {
      note_malformed_downlink("malformed AUTN fragment");
    }
    modem::AuthResult r;
    r.kind = modem::AuthResult::Kind::kSynchFailure;
    r.auts.fill(0x5e);  // opaque ACK token
    return r;
  }

  // Normal 5G-AKA: derive RES from RAND/AUTN via Milenage. The AUTN MAC
  // is verified against the SQN carried in AUTN.
  crypto::Block rnd{};
  for (std::size_t i = 0; i < 16; ++i) rnd[i] = rand[i];
  std::array<std::uint8_t, 2> amf = {autn[6], autn[7]};
  // Recover SQN: AK depends only on RAND, compute with a dummy SQN first.
  const auto probe = milenage_.compute(rnd, {}, amf);
  std::array<std::uint8_t, 6> sqn{};
  for (std::size_t i = 0; i < 6; ++i) sqn[i] = autn[i] ^ probe.ak[i];
  const auto out = milenage_.compute(rnd, sqn, amf);
  bool mac_ok = true;
  for (std::size_t i = 0; i < 8; ++i) {
    if (autn[8 + i] != out.mac_a[i]) mac_ok = false;
  }
  modem::AuthResult r;
  if (!mac_ok) {
    r.kind = modem::AuthResult::Kind::kMacFailure;
    return r;
  }
  r.kind = modem::AuthResult::Kind::kSuccess;
  r.res = Bytes(out.res.begin(), out.res.end());
  return r;
}

void SeedApplet::on_root_status(bool rooted) {
  mode_ = rooted ? core::DeviceMode::kSeedR : core::DeviceMode::kSeedU;
}

void SeedApplet::notify_recovered() {
  if (pending_wait_.armed()) {
    pending_wait_.cancel();
    ++stats_.plans_cancelled_by_recovery;
    plan_in_flight_ = false;
  }
  if (retry_timer_.armed()) {
    // Service came back mid-backoff: the pending retry is unnecessary.
    retry_timer_.cancel();
    ++stats_.plans_cancelled_by_recovery;
    plan_in_flight_ = false;
  }
}

bool SeedApplet::applet_down() const {
  return dead_ || sim_.now() < down_until_;
}

void SeedApplet::note_malformed_downlink(const char* what) {
  ++stats_.malformed_downlinks;
  obs::count("seed.applet_malformed");
  SLOG(kDebug, "applet") << "discarding " << what;
}

void SeedApplet::crash() {
  ++stats_.applet_crashes;
  obs::count("seed.applet_crashes");
  // Volatile state is lost: partial reassembly, in-flight plan, timers.
  reassembler_.reset();
  last_diag_frame_.clear();
  pending_wait_.cancel();
  retry_timer_.cancel();
  action_deadline_.cancel();
  ++action_epoch_;  // outstanding action completions are stale
  plan_in_flight_ = false;
  pending_dp_config_dnn_.reset();
  ++crash_count_;
  if (crash_count_ >= chaos_->config().applet_max_crashes) {
    dead_ = true;
    SLOG(kWarn, "applet") << "applet dead after " << crash_count_
                          << " crashes";
    obs::emit_degraded(obs::Origin::kSim);
    obs::count("seed.applet_dead");
    if (on_dead_) on_dead_();
    return;
  }
  down_until_ = sim_.now() + chaos_->config().applet_restart_time;
  SLOG(kWarn, "applet") << "applet crashed, restart in "
                        << sim::to_ms(chaos_->config().applet_restart_time)
                        << " ms";
}

std::size_t SeedApplet::storage_used_bytes() const {
  return kAppletCodeBytes + nas::registry_storage_bytes() +
         records_.storage_bytes() + /*config store*/ 256;
}

// ------------------------------------------------------- decision module

void SeedApplet::handle_diag(const proto::DiagInfo& info) {
  if (!enabled_) return;
  if (chaos_ != nullptr) {
    if (applet_down()) return;  // diagnosis lost while crashed/dead
    if (chaos_->crash_applet()) {
      crash();
      return;
    }
  }
  ++stats_.diags_received;
  SLOG(kInfo, "applet") << "diagnosis: "
                        << nas::cause_name(info.plane, info.cause) << " (#"
                        << int(info.cause) << ")"
                        << (info.config ? " + config" : "");
  last_cause_time_ = sim_.now();
  obs::count("seed.diag.received");

  if (info.config) apply_config(*info.config);

  core::HandlingPlan plan = core::decide(info, mode_);
  obs::emit_diagnosis(
      obs::Origin::kSim, static_cast<std::uint8_t>(info.plane), info.cause,
      plan.actions.empty()
          ? 0
          : static_cast<std::uint8_t>(plan.actions.front()));
  if (plan.notify_user) {
    ++stats_.user_notifications;
    obs::emit_terminal_failure(obs::Origin::kSim, "diagnosis says notify user",
                              static_cast<std::uint8_t>(info.plane),
                              info.cause);
    if (notify_user_) {
      notify_user_(std::string(nas::cause_name(info.plane, info.cause)));
    }
    return;
  }
  if (plan.actions.empty() && plan.wait.count() == 0) return;
  execute_plan(std::move(plan), info.cause);
}

void SeedApplet::apply_config(const proto::ConfigPayload& config) {
  Reader r(config.value);
  switch (config.kind) {
    case nas::ConfigKind::kSuggestedDnn: {
      if (const auto dnn = nas::Dnn::decode(r); dnn && r.done()) {
        profile_.dnn = dnn->to_string();
        pending_dp_config_dnn_ = profile_.dnn;
      }
      break;
    }
    case nas::ConfigKind::kSupportedRat: {
      if (const auto plmn = nas::PlmnId::decode(r); plmn && r.done()) {
        profile_.preferred_plmn = *plmn;
      }
      break;
    }
    case nas::ConfigKind::kSuggestedSnssai: {
      if (const auto slice = nas::SNssai::decode(r); slice && r.done()) {
        profile_.snssai = *slice;
        if (control_ != nullptr) control_->update_slice(*slice);
        // The follow-up A3/B3 re-establishes on the served slice; mark a
        // data-plane config so B3 runs as a modification.
        pending_dp_config_dnn_ = profile_.dnn;
      }
      break;
    }
    case nas::ConfigKind::kSuggestedSessionType: {
      const std::uint8_t t = r.u8();
      if (r.done() && t >= 1 && t <= 5) {
        profile_.pdu_type = static_cast<nas::PduSessionType>(t);
      }
      break;
    }
    case nas::ConfigKind::kSuggested5qi: {
      const std::uint8_t q = r.u8();
      if (r.done() && nas::is_standard_5qi(q)) profile_.fiveqi = q;
      break;
    }
    default:
      break;  // TFT/filter suggestions are applied network-side
  }
}

void SeedApplet::execute_plan(core::HandlingPlan plan, std::uint8_t cause) {
  if (plan_in_flight_) return;  // one handling at a time
  plan_in_flight_ = true;
  ++stats_.plans_executed;
  if (plan.learning_trial) ++stats_.learning_trials;

  auto start = [this, plan, cause] {
    // Transient check: if service already recovered during the wait, the
    // reset is unnecessary (§4.4.2).
    if (recovery_probe_ && recovery_probe_()) {
      ++stats_.plans_cancelled_by_recovery;
      plan_in_flight_ = false;
      return;
    }
    run_actions(plan.actions, 0, /*attempt=*/1, plan.learning_trial, cause,
                /*escalated=*/false);
  };

  if (plan.wait.count() > 0) {
    pending_wait_.arm(plan.wait, start);
  } else {
    start();
  }
}

bool SeedApplet::rate_limited(proto::ResetAction a) const {
  const auto it = last_action_time_.find(a);
  return it != last_action_time_.end() &&
         sim_.now() - it->second < params::kSeedActionRateLimit;
}

void SeedApplet::charge_rate_limit(proto::ResetAction a) {
  last_action_time_[a] = sim_.now();
}

void SeedApplet::refund_rate_limit(proto::ResetAction a,
                                   sim::TimePoint issued_at) {
  if (!retry_policy_.refund_failed_actions) return;
  // A failed reset must not consume rate-limit budget and suppress the
  // follow-up retry; erase the charge unless a newer issue of the same
  // action has overwritten it.
  const auto it = last_action_time_.find(a);
  if (it != last_action_time_.end() && it->second == issued_at) {
    last_action_time_.erase(it);
  }
}

void SeedApplet::run_actions(std::vector<proto::ResetAction> actions,
                             std::size_t idx, int attempt, bool learning,
                             std::uint8_t cause, bool escalated) {
  if (idx >= actions.size()) {
    // Plan exhausted. Hardened policy walks the rest of the Table 3
    // ladder once, then falls back to the terminal rung: the user.
    if (retry_policy_.escalate_beyond_plan && !escalated) {
      std::vector<proto::ResetAction> ladder =
          core::escalation_ladder(actions, mode_);
      if (!ladder.empty()) {
        ++stats_.tier_escalations;
        obs::emit_tier_escalated(static_cast<std::uint8_t>(ladder.front()));
        obs::count("seed.tier_escalations");
        SLOG(kInfo, "applet")
            << "plan exhausted, escalating to "
            << proto::reset_action_name(ladder.front());
        run_actions(std::move(ladder), 0, 1, learning, cause, true);
        return;
      }
    }
    if (retry_policy_.notify_user_on_exhaust) {
      ++stats_.user_notifications;
      obs::emit_terminal_failure(obs::Origin::kSim,
                                 "recovery actions exhausted", 0, cause);
      if (notify_user_) notify_user_("recovery actions exhausted");
    }
    plan_in_flight_ = false;
    return;
  }
  const proto::ResetAction action = actions[idx];
  if (control_ == nullptr) {
    plan_in_flight_ = false;
    return;
  }
  if (rate_limited(action)) {
    ++stats_.actions_rate_limited;
    obs::emit_rate_limited(static_cast<std::uint8_t>(action));
    obs::count("seed.rate_limited");
    run_actions(std::move(actions), idx + 1, 1, learning, cause, escalated);
    return;
  }
  ++stats_.actions_run;
  SLOG(kInfo, "applet") << "reset action " << proto::reset_action_name(action)
                        << (attempt > 1 ? " (retry)" : "");
  const auto issued_at = sim_.now();
  charge_rate_limit(action);

  const std::uint64_t epoch = ++action_epoch_;
  auto complete = [this, actions, idx, attempt, learning, cause, escalated,
                   action, issued_at, epoch](bool ok) mutable {
    if (epoch != action_epoch_) return;  // stale (deadline already fired,
                                         // a crash, or a newer action)
    ++action_epoch_;                     // first completion wins
    action_deadline_.cancel();
    // A2 is a pure config write: done(true) confirms the write landed,
    // but recovery is judged by the follow-up action (A1/B2) that uses
    // the config, so the plan always advances. done(false) — only
    // possible under chaos — is retryable like any other action.
    const bool config_only = action == proto::ResetAction::kA2CPlaneConfigUpdate;
    const bool healthy =
        ok && !config_only && (!recovery_probe_ || recovery_probe_());
    if (healthy) {
      if (learning) {
        // Algorithm 1 lines 3-7: record and upload the success.
        records_.record_success(cause, actions[idx]);
        if (upload_records_) {
          upload_records_(records_.snapshot());
          records_.clear();
        }
      }
      plan_in_flight_ = false;
      return;
    }
    if (!ok) {
      refund_rate_limit(action, issued_at);
      if (attempt < retry_policy_.max_attempts_per_action) {
        ++stats_.actions_retried;
        obs::emit_action_retry(static_cast<std::uint8_t>(action),
                               static_cast<std::uint8_t>(attempt + 1));
        obs::count("seed.action_retries");
        retry_timer_.arm(
            core::backoff_delay(retry_policy_, attempt),
            [this, actions = std::move(actions), idx, attempt, learning,
             cause, escalated]() mutable {
              if (recovery_probe_ && recovery_probe_()) {
                ++stats_.plans_cancelled_by_recovery;
                plan_in_flight_ = false;
                return;
              }
              run_actions(std::move(actions), idx, attempt + 1, learning,
                          cause, escalated);
            });
        return;
      }
      if (retry_policy_.escalate_beyond_plan && idx + 1 < actions.size()) {
        ++stats_.tier_escalations;
        obs::emit_tier_escalated(
            static_cast<std::uint8_t>(actions[idx + 1]));
        obs::count("seed.tier_escalations");
      }
    }
    run_actions(std::move(actions), idx + 1, 1, learning, cause, escalated);
  };

  if (retry_policy_.action_deadline.count() > 0) {
    // AT-command hang guard: treat a command that never answers as failed.
    action_deadline_.arm(retry_policy_.action_deadline,
                         [complete]() mutable { complete(false); });
  }
  issue_action(action, std::move(complete));
}

void SeedApplet::issue_action(proto::ResetAction action,
                              modem::ModemControl::Done done) {
  switch (action) {
    case proto::ResetAction::kA1ProfileReload:
      control_->refresh_profile(std::move(done));
      break;
    case proto::ResetAction::kA2CPlaneConfigUpdate:
      control_->update_cplane_config(profile_.preferred_plmn,
                                     std::move(done));
      break;
    case proto::ResetAction::kA3DPlaneConfigUpdate:
      control_->update_dplane_config(profile_.dnn, std::nullopt,
                                     std::move(done));
      break;
    case proto::ResetAction::kB1ModemReset:
      control_->at_modem_reset(std::move(done));
      break;
    case proto::ResetAction::kB2CPlaneReattach:
      control_->at_reattach(std::move(done));
      break;
    case proto::ResetAction::kB3DPlaneReset:
      if (pending_dp_config_dnn_) {
        // Config-related cause: modify with the fresh config (Table 3).
        const std::string dnn = *pending_dp_config_dnn_;
        pending_dp_config_dnn_.reset();
        control_->at_dplane_modify(dnn, std::move(done));
      } else {
        control_->fast_dplane_reset(std::move(done));
      }
      break;
    case proto::ResetAction::kNone:
    case proto::ResetAction::kNotifyUser:
      done(false);
      break;
  }
}

// --------------------------------------------------- data delivery path

void SeedApplet::report_failure(const proto::FailureReport& report) {
  if (!enabled_) return;
  if (chaos_ != nullptr) {
    if (applet_down()) return;  // report lost while crashed/dead
    if (chaos_->crash_applet()) {
      crash();
      return;
    }
  }
  ++stats_.reports_received;
  // Conflict window: an ongoing cause-based handling supersedes (§4.4.2).
  if (sim_.now() - last_cause_time_ < params::kSeedConflictWindow) {
    ++stats_.reports_suppressed_conflict;
    SLOG(kDebug, "applet") << "delivery report suppressed (conflict window)";
    obs::emit_conflict_suppressed();
    obs::count("seed.conflict_suppressed");
    return;
  }
  if (mode_ == core::DeviceMode::kSeedR && !collab_uplink_dead_) {
    send_report_uplink(report);
    return;
  }
  core::HandlingPlan plan = core::decide_for_report(report, mode_);
  emit_local_plan_verdict(plan);
  execute_plan(std::move(plan), 0);
}

void SeedApplet::on_os_data_stall() {
  proto::FailureReport r;
  r.type = proto::FailureType::kNoConnection;
  r.direction = proto::TrafficDirection::kBoth;
  report_failure(r);
}

void SeedApplet::send_report_uplink(const proto::FailureReport& report) {
  if (control_ == nullptr) return;
  ++stats_.reports_sent_uplink;
  // Uplink prep: APDU collection + SIM-side encode/crypto (Fig. 12).
  const auto prep_start = sim_.now();
  const auto prep = sim::secs_f(rng_.lognormal_median(
      sim::to_seconds(params::kUplinkPrepMedian), params::kPrepSigma));
  // Scratch-composed uplink: encode -> protect -> pack without
  // intermediate copies (all buffers recycled across reports).
  Writer w(std::move(report_scratch_));
  report.encode_into(w);
  report_scratch_ = std::move(w).take();
  seed_ctx_.protect_into(report_scratch_, crypto::Direction::kUplink,
                         frame_scratch_);
  const auto dnns = proto::DiagDnnCodec::pack(frame_scratch_);
  sim_.schedule_after(prep, [this, dnns, report, prep_start] {
    report_prep_ms_.push_back(sim::to_ms(sim_.now() - prep_start));
    const auto send_start = sim_.now();
    control_->send_diag_report(dnns, [this, report, send_start](bool acked) {
      if (!acked) {
        // The modem gave up on the transfer (chaos-impaired channel).
        // Fall back to the local Table 3 plan; after a streak, declare
        // the collab uplink dead so future reports go local directly.
        ++stats_.uplink_report_failures;
        obs::count("seed.collab.uplink_failed");
        SLOG(kWarn, "applet") << "uplink report failed";
        if (++uplink_fail_streak_ >= 3 && !collab_uplink_dead_) {
          collab_uplink_dead_ = true;
          obs::emit_degraded(obs::Origin::kSim);
          obs::count("seed.collab_dead");
          SLOG(kWarn, "applet") << "collab uplink declared dead";
        }
        core::HandlingPlan plan = core::decide_for_report(report, mode_);
        emit_local_plan_verdict(plan);
        execute_plan(std::move(plan), 0);
        return;
      }
      uplink_fail_streak_ = 0;
      report_trans_ms_.push_back(sim::to_ms(sim_.now() - send_start));
      SLOG(kDebug, "applet") << "uplink report delivered";
      obs::emit_collab_uplink(report_prep_ms_.back(),
                              report_trans_ms_.back());
      obs::count("seed.collab.uplink");
      // Give the network a beat to apply a config-only fix (modification
      // command); if service is still down, run the Fig. 6 fast reset.
      sim_.schedule_after(sim::ms(120), [this] {
        if (recovery_probe_ && recovery_probe_()) return;
        if (!rate_limited(proto::ResetAction::kB3DPlaneReset)) {
          ++stats_.actions_run;
          const auto issued_at = sim_.now();
          charge_rate_limit(proto::ResetAction::kB3DPlaneReset);
          control_->fast_dplane_reset([this, issued_at](bool ok) {
            if (!ok) {
              refund_rate_limit(proto::ResetAction::kB3DPlaneReset,
                                issued_at);
            }
          });
        } else {
          ++stats_.actions_rate_limited;
          obs::emit_rate_limited(
              static_cast<std::uint8_t>(proto::ResetAction::kB3DPlaneReset));
          obs::count("seed.rate_limited");
        }
      });
    });
  });
}

}  // namespace seed::applet
