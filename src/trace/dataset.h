// Synthetic signaling-trace dataset: the stand-in for the paper's 6.7 TB
// MobileInsight/MI-LAB corpus (§3.1: 4.7M messages, 30+ device models,
// 8 carriers, 24k management procedures, 2832 failures).
//
// The generator draws failures from the published Table 1 mix and emits
// *real encoded NAS messages* for the reject signaling; the analyzer
// parses them back (exercising the full codec path) and re-derives the
// Table 1 statistics and the legacy-disruption inputs of Fig. 2.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/codec.h"
#include "nas/causes.h"
#include "simcore/rng.h"

namespace seed::trace {

struct ProcedureRecord {
  double timestamp_s = 0;        // within the collection window
  std::uint8_t carrier = 0;      // 8 carriers (paper §3.1)
  std::uint8_t device_model = 0; // 30+ device models
  nas::Plane plane = nas::Plane::kControl;
  bool failed = false;
  /// Encoded NAS message of the procedure outcome: a reject carrying the
  /// cause on failure, an accept otherwise.
  Bytes outcome_message;

  void encode(Writer& w) const;
  static std::optional<ProcedureRecord> decode(Reader& r);
};

struct Dataset {
  std::vector<ProcedureRecord> records;

  Bytes serialize() const;
  static std::optional<Dataset> deserialize(BytesView data);
};

struct GeneratorOptions {
  std::size_t procedures = 24000;   // paper: 24k procedures
  double failure_ratio = 0.118;     // paper: 2832/24000 ≈ 11.8%
  int carriers = 8;
  int device_models = 32;
  double window_days = 2285;        // 2015-Q3 .. 2021-Q4
};

/// Generates a dataset with the Table 1 cause mixture.
Dataset generate_dataset(sim::Rng& rng, const GeneratorOptions& options = {});

struct CauseCount {
  nas::Plane plane;
  std::uint8_t cause;
  std::size_t count;
  double fraction_of_failures;
};

struct AnalysisResult {
  std::size_t procedures = 0;
  std::size_t failures = 0;
  std::size_t undecodable = 0;
  std::size_t control_plane_failures = 0;
  std::size_t data_plane_failures = 0;
  /// Sorted descending by count.
  std::vector<CauseCount> causes;

  double failure_ratio() const {
    return procedures == 0 ? 0.0
                           : static_cast<double>(failures) / procedures;
  }
  std::vector<CauseCount> top_causes(nas::Plane plane, std::size_t k) const;
};

/// Parses every outcome message and tallies causes (Table 1).
AnalysisResult analyze(const Dataset& dataset);

}  // namespace seed::trace
