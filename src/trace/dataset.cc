#include "trace/dataset.h"

#include <algorithm>

#include "common/codec.h"
#include "nas/messages.h"

namespace seed::trace {

namespace {

// Table 1 cause mixture, as fractions of *all* failures. The five listed
// causes per plane cover part of each plane's mass (56.2% CP / 43.8% DP);
// the remainder is spread over other registered causes of that plane.
struct MixEntry {
  nas::Plane plane;
  std::uint8_t cause;
  double weight;
};

const std::vector<MixEntry>& mixture() {
  using P = nas::Plane;
  static const std::vector<MixEntry> kMix = {
      // Control plane top-5 (paper Table 1).
      {P::kControl, 9, 15.2},    // UE identity cannot be derived
      {P::kControl, 15, 12.6},   // no suitable cells in tracking area
      {P::kControl, 11, 10.3},   // PLMN not allowed
      {P::kControl, 50, 7.5},    // no EPS bearer context activated
      {P::kControl, 98, 2.8},    // message type not compatible with state
      // Control-plane remainder (~7.8%).
      {P::kControl, 3, 2.1},     // illegal UE
      {P::kControl, 22, 2.2},    // congestion
      {P::kControl, 7, 1.2},     // 5GS services not allowed
      {P::kControl, 96, 1.3},    // invalid mandatory information
      {P::kControl, 111, 1.0},   // protocol error, unspecified
      // Data plane top-5.
      {P::kData, 33, 7.9},       // service option not subscribed
      {P::kData, 96, 5.9},       // invalid mandatory information
      {P::kData, 29, 4.7},       // user authentication failed
      {P::kData, 31, 2.6},       // request rejected, unspecified
      {P::kData, 26, 1.9},       // insufficient resources
      // Data-plane remainder (~20.8%), spread thinly so the published
      // top-5 ordering is preserved.
      {P::kData, 27, 1.8},       // missing or unknown DNN
      {P::kData, 28, 1.8},       // unknown PDU session type
      {P::kData, 41, 1.8},       // semantic error in TFT
      {P::kData, 42, 1.7},       // syntactical error in TFT
      {P::kData, 44, 1.8},       // semantic errors in packet filters
      {P::kData, 45, 1.7},       // syntactical error in packet filters
      {P::kData, 59, 1.7},       // unsupported 5QI
      {P::kData, 70, 1.7},       // missing or unknown DNN in slice
      {P::kData, 54, 1.7},       // PDU session does not exist
      {P::kData, 38, 1.7},       // network failure
      {P::kData, 68, 1.7},       // not supported SSC mode
      {P::kData, 83, 1.7},       // semantic error in QoS operation
  };
  return kMix;
}

Bytes make_outcome(sim::Rng& rng, nas::Plane plane, bool failed,
                   std::uint8_t cause) {
  if (plane == nas::Plane::kControl) {
    if (failed) {
      nas::RegistrationReject rej;
      rej.cause = cause;
      if (rng.chance(0.3)) rej.t3502_seconds = 720;
      return nas::encode_message(nas::NasMessage(rej));
    }
    nas::RegistrationAccept acc;
    acc.guti = nas::Guti{{310, 260}, 1, 1,
                         static_cast<std::uint32_t>(rng.next())};
    acc.tai_list = {nas::Tai{{310, 260}, 100}};
    return nas::encode_message(nas::NasMessage(acc));
  }
  nas::SmHeader hdr{1, static_cast<std::uint8_t>(rng.uniform_int(1, 250))};
  if (failed) {
    nas::PduSessionEstablishmentReject rej;
    rej.hdr = hdr;
    rej.cause = cause;
    if (rng.chance(0.2)) rej.backoff_seconds = 60;
    return nas::encode_message(nas::NasMessage(rej));
  }
  nas::PduSessionEstablishmentAccept acc;
  acc.hdr = hdr;
  acc.ue_addr = nas::Ipv4{{10, 45, 0, 9}};
  acc.dns_addr = nas::Ipv4{{10, 45, 0, 1}};
  acc.qos = nas::QosRule{9, 10000, 50000};
  return nas::encode_message(nas::NasMessage(acc));
}

}  // namespace

void ProcedureRecord::encode(Writer& w) const {
  w.u64(static_cast<std::uint64_t>(timestamp_s * 1000.0));
  w.u8(carrier);
  w.u8(device_model);
  w.u8(plane == nas::Plane::kControl ? 0 : 1);
  w.u8(failed ? 1 : 0);
  w.lv16(outcome_message);
}

std::optional<ProcedureRecord> ProcedureRecord::decode(Reader& r) {
  ProcedureRecord rec;
  rec.timestamp_s = static_cast<double>(r.u64()) / 1000.0;
  rec.carrier = r.u8();
  rec.device_model = r.u8();
  const std::uint8_t plane = r.u8();
  const std::uint8_t failed = r.u8();
  const BytesView outcome = r.lv16();
  rec.outcome_message.assign(outcome.begin(), outcome.end());
  if (!r.ok() || plane > 1 || failed > 1) return std::nullopt;
  rec.plane = plane == 0 ? nas::Plane::kControl : nas::Plane::kData;
  rec.failed = failed == 1;
  return rec;
}

Bytes Dataset::serialize() const {
  Writer w;
  w.str("SEEDTRC1");
  w.u32(static_cast<std::uint32_t>(records.size()));
  for (const auto& r : records) r.encode(w);
  return std::move(w).take();
}

std::optional<Dataset> Dataset::deserialize(BytesView data) {
  Reader r(data);
  const BytesView magic = r.raw(8);
  if (!r.ok() || to_string(magic) != "SEEDTRC1") return std::nullopt;
  const std::uint32_t n = r.u32();
  Dataset ds;
  ds.records.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    auto rec = ProcedureRecord::decode(r);
    if (!rec) return std::nullopt;
    ds.records.push_back(std::move(*rec));
  }
  if (!r.done()) return std::nullopt;
  return ds;
}

Dataset generate_dataset(sim::Rng& rng, const GeneratorOptions& options) {
  std::vector<double> weights;
  for (const auto& m : mixture()) weights.push_back(m.weight);

  Dataset ds;
  ds.records.reserve(options.procedures);
  const double window_s = options.window_days * 86400.0;
  for (std::size_t i = 0; i < options.procedures; ++i) {
    ProcedureRecord rec;
    rec.timestamp_s = rng.uniform(0.0, window_s);
    rec.carrier = static_cast<std::uint8_t>(
        rng.uniform_int(0, options.carriers - 1));
    rec.device_model = static_cast<std::uint8_t>(
        rng.uniform_int(0, options.device_models - 1));
    rec.failed = rng.chance(options.failure_ratio);
    if (rec.failed) {
      const auto& m = mixture()[rng.weighted_index(weights)];
      rec.plane = m.plane;
      rec.outcome_message = make_outcome(rng, m.plane, true, m.cause);
    } else {
      rec.plane = rng.chance(0.55) ? nas::Plane::kControl : nas::Plane::kData;
      rec.outcome_message = make_outcome(rng, rec.plane, false, 0);
    }
    ds.records.push_back(std::move(rec));
  }
  std::sort(ds.records.begin(), ds.records.end(),
            [](const ProcedureRecord& a, const ProcedureRecord& b) {
              return a.timestamp_s < b.timestamp_s;
            });
  return ds;
}

AnalysisResult analyze(const Dataset& dataset) {
  AnalysisResult out;
  out.procedures = dataset.records.size();
  std::map<std::pair<nas::Plane, std::uint8_t>, std::size_t> counts;
  for (const auto& rec : dataset.records) {
    const auto msg = nas::decode_message(rec.outcome_message);
    if (!msg) {
      ++out.undecodable;
      continue;
    }
    const auto cause = nas::extract_cause(*msg);
    if (!cause) continue;  // accept message: successful procedure
    ++out.failures;
    if (cause->first == nas::Plane::kControl) {
      ++out.control_plane_failures;
    } else {
      ++out.data_plane_failures;
    }
    ++counts[*cause];
  }
  for (const auto& [key, n] : counts) {
    out.causes.push_back(CauseCount{
        key.first, key.second, n,
        out.failures == 0 ? 0.0 : static_cast<double>(n) / out.failures});
  }
  std::sort(out.causes.begin(), out.causes.end(),
            [](const CauseCount& a, const CauseCount& b) {
              return a.count > b.count;
            });
  return out;
}

std::vector<CauseCount> AnalysisResult::top_causes(nas::Plane plane,
                                                   std::size_t k) const {
  std::vector<CauseCount> out;
  for (const auto& c : causes) {
    if (c.plane == plane) {
      out.push_back(c);
      if (out.size() == k) break;
    }
  }
  return out;
}

}  // namespace seed::trace
