#include "nas/messages.h"

#include <type_traits>

#include "obs/prof.h"

namespace seed::nas {

namespace {

// Optional-IE tags (shared across messages; values are local to this
// simulation's TLV scheme).
constexpr std::uint8_t kIeiLastVisitedTai = 0x52;
constexpr std::uint8_t kIeiT3502 = 0x16;
constexpr std::uint8_t kIeiAuts = 0x30;
constexpr std::uint8_t kIeiGuti = 0x77;
constexpr std::uint8_t kIeiSnssai = 0x22;
constexpr std::uint8_t kIeiTft = 0x59;
constexpr std::uint8_t kIeiQos = 0x79;
constexpr std::uint8_t kIeiDns = 0x39;
constexpr std::uint8_t kIeiBackoff = 0x37;

void write_mm_header(Writer& w, MsgType t) {
  w.u8(kEpd5gmm);
  w.u8(0);  // plain security header
  w.u8(static_cast<std::uint8_t>(t));
}

void write_sm_header(Writer& w, const SmHeader& h, MsgType t) {
  w.u8(kEpd5gsm);
  w.u8(h.pdu_session_id);
  w.u8(h.pti);
  w.u8(static_cast<std::uint8_t>(t));
}

template <typename T>
void encode_ie_tlv(Writer& w, std::uint8_t tag, const T& ie) {
  const std::size_t value = w.tlv8_begin(tag);
  ie.encode(w);
  w.lv8_end(value);
}

void encode_u32_tlv(Writer& w, std::uint8_t tag, std::uint32_t v) {
  w.u8(tag);
  w.u8(4);
  w.u32(v);
}

// Iterates the optional-TLV tail; `handler(tag, Reader&)` returns false on
// unknown tag or parse error.
template <typename Handler>
bool parse_tlvs(Reader& r, Handler&& handler) {
  while (r.ok() && r.remaining() > 0) {
    const std::uint8_t tag = r.u8();
    const BytesView value = r.lv8();
    if (!r.ok()) return false;
    Reader vr(value);
    if (!handler(tag, vr)) return false;
    if (!vr.done()) return false;  // value must be fully consumed
  }
  return r.ok();
}

// ---------------------------------------------------------------- bodies

void encode_body(Writer& w, const RegistrationRequest& m) {
  m.identity.encode(w);
  w.u8(m.follow_on_request ? 1 : 0);
  w.u8(static_cast<std::uint8_t>(m.requested_nssai.size()));
  for (const auto& s : m.requested_nssai) s.encode(w);
  if (m.last_visited_tai) encode_ie_tlv(w, kIeiLastVisitedTai, *m.last_visited_tai);
}

std::optional<RegistrationRequest> decode_registration_request(Reader& r) {
  RegistrationRequest m;
  const auto id = MobileIdentity::decode(r);
  if (!id) return std::nullopt;
  m.identity = *id;
  const std::uint8_t follow = r.u8();
  if (follow > 1) return std::nullopt;
  m.follow_on_request = follow == 1;
  const std::uint8_t n = r.u8();
  for (std::uint8_t i = 0; r.ok() && i < n; ++i) {
    const auto s = SNssai::decode(r);
    if (!s) return std::nullopt;
    m.requested_nssai.push_back(*s);
  }
  const bool ok = parse_tlvs(r, [&](std::uint8_t tag, Reader& vr) {
    if (tag == kIeiLastVisitedTai) {
      const auto t = Tai::decode(vr);
      if (!t) return false;
      m.last_visited_tai = *t;
      return true;
    }
    return false;
  });
  if (!ok) return std::nullopt;
  return m;
}

void encode_body(Writer& w, const RegistrationAccept& m) {
  m.guti.encode(w);
  w.u8(static_cast<std::uint8_t>(m.tai_list.size()));
  for (const auto& t : m.tai_list) t.encode(w);
  w.u8(static_cast<std::uint8_t>(m.allowed_nssai.size()));
  for (const auto& s : m.allowed_nssai) s.encode(w);
  w.u32(m.t3512_seconds);
}

std::optional<RegistrationAccept> decode_registration_accept(Reader& r) {
  RegistrationAccept m;
  const auto g = Guti::decode(r);
  if (!g) return std::nullopt;
  m.guti = *g;
  const std::uint8_t nt = r.u8();
  for (std::uint8_t i = 0; r.ok() && i < nt; ++i) {
    const auto t = Tai::decode(r);
    if (!t) return std::nullopt;
    m.tai_list.push_back(*t);
  }
  const std::uint8_t ns = r.u8();
  for (std::uint8_t i = 0; r.ok() && i < ns; ++i) {
    const auto s = SNssai::decode(r);
    if (!s) return std::nullopt;
    m.allowed_nssai.push_back(*s);
  }
  m.t3512_seconds = r.u32();
  if (!r.done()) return std::nullopt;
  return m;
}

void encode_body(Writer& w, const RegistrationReject& m) {
  w.u8(m.cause);
  if (m.t3502_seconds) encode_u32_tlv(w, kIeiT3502, *m.t3502_seconds);
}

std::optional<RegistrationReject> decode_registration_reject(Reader& r) {
  RegistrationReject m;
  m.cause = r.u8();
  const bool ok = parse_tlvs(r, [&](std::uint8_t tag, Reader& vr) {
    if (tag == kIeiT3502) {
      m.t3502_seconds = vr.u32();
      return vr.ok();
    }
    return false;
  });
  if (!ok) return std::nullopt;
  return m;
}

void encode_body(Writer& w, const DeregistrationRequest& m) {
  w.u8(m.switch_off ? 1 : 0);
}

std::optional<DeregistrationRequest> decode_deregistration_request(Reader& r) {
  DeregistrationRequest m;
  const std::uint8_t v = r.u8();
  if (!r.done() || v > 1) return std::nullopt;
  m.switch_off = v == 1;
  return m;
}

void encode_body(Writer& w, const ServiceRequest& m) { w.u8(m.service_type); }

std::optional<ServiceRequest> decode_service_request(Reader& r) {
  ServiceRequest m;
  m.service_type = r.u8();
  if (!r.done() || m.service_type > 1) return std::nullopt;
  return m;
}

void encode_body(Writer&, const ServiceAccept&) {}

void encode_body(Writer& w, const ServiceReject& m) { w.u8(m.cause); }

std::optional<ServiceReject> decode_service_reject(Reader& r) {
  ServiceReject m;
  m.cause = r.u8();
  if (!r.done()) return std::nullopt;
  return m;
}

void encode_body(Writer& w, const AuthenticationRequest& m) {
  w.u8(m.ngksi);
  w.raw(BytesView(m.rand.data(), m.rand.size()));
  w.raw(BytesView(m.autn.data(), m.autn.size()));
}

std::optional<AuthenticationRequest> decode_authentication_request(Reader& r) {
  AuthenticationRequest m;
  m.ngksi = r.u8();
  const BytesView rand = r.raw(16);
  const BytesView autn = r.raw(16);
  if (!r.done() || m.ngksi > 7) return std::nullopt;
  for (std::size_t i = 0; i < 16; ++i) {
    m.rand[i] = rand[i];
    m.autn[i] = autn[i];
  }
  return m;
}

void encode_body(Writer& w, const AuthenticationResponse& m) {
  w.lv8(m.res);
}

std::optional<AuthenticationResponse> decode_authentication_response(
    Reader& r) {
  AuthenticationResponse m;
  const BytesView res = r.lv8();
  m.res.assign(res.begin(), res.end());
  if (!r.done() || m.res.size() < 4 || m.res.size() > 16) return std::nullopt;
  return m;
}

void encode_body(Writer&, const AuthenticationReject&) {}

void encode_body(Writer& w, const AuthenticationFailure& m) {
  w.u8(m.cause);
  if (m.auts) {
    w.u8(kIeiAuts);
    w.u8(static_cast<std::uint8_t>(m.auts->size()));
    w.raw(BytesView(m.auts->data(), m.auts->size()));
  }
}

std::optional<AuthenticationFailure> decode_authentication_failure(Reader& r) {
  AuthenticationFailure m;
  m.cause = r.u8();
  const bool ok = parse_tlvs(r, [&](std::uint8_t tag, Reader& vr) {
    if (tag == kIeiAuts) {
      const BytesView a = vr.raw(14);
      if (!vr.ok()) return false;
      std::array<std::uint8_t, 14> auts{};
      for (std::size_t i = 0; i < 14; ++i) auts[i] = a[i];
      m.auts = auts;
      return true;
    }
    return false;
  });
  if (!ok) return std::nullopt;
  return m;
}

void encode_body(Writer& w, const SecurityModeCommand& m) {
  w.u8(m.ea);
  w.u8(m.ia);
}

std::optional<SecurityModeCommand> decode_security_mode_command(Reader& r) {
  SecurityModeCommand m;
  m.ea = r.u8();
  m.ia = r.u8();
  if (!r.done() || m.ea > 3 || m.ia > 3) return std::nullopt;
  return m;
}

void encode_body(Writer&, const SecurityModeComplete&) {}

void encode_body(Writer& w, const ConfigurationUpdateCommand& m) {
  w.u8(static_cast<std::uint8_t>(m.tai_list.size()));
  for (const auto& t : m.tai_list) t.encode(w);
  if (m.guti) encode_ie_tlv(w, kIeiGuti, *m.guti);
}

std::optional<ConfigurationUpdateCommand> decode_configuration_update(
    Reader& r) {
  ConfigurationUpdateCommand m;
  const std::uint8_t n = r.u8();
  for (std::uint8_t i = 0; r.ok() && i < n; ++i) {
    const auto t = Tai::decode(r);
    if (!t) return std::nullopt;
    m.tai_list.push_back(*t);
  }
  const bool ok = parse_tlvs(r, [&](std::uint8_t tag, Reader& vr) {
    if (tag == kIeiGuti) {
      const auto g = Guti::decode(vr);
      if (!g) return false;
      m.guti = *g;
      return true;
    }
    return false;
  });
  if (!ok) return std::nullopt;
  return m;
}

// --------------------------------------------------------------- 5GSM

void encode_body(Writer& w, const PduSessionEstablishmentRequest& m) {
  w.u8(static_cast<std::uint8_t>(m.type));
  w.u8(static_cast<std::uint8_t>(m.ssc));
  m.dnn.encode(w);
  if (m.snssai) encode_ie_tlv(w, kIeiSnssai, *m.snssai);
}

std::optional<PduSessionEstablishmentRequest> decode_pdu_estb_request(
    Reader& r, const SmHeader& hdr) {
  PduSessionEstablishmentRequest m;
  m.hdr = hdr;
  const std::uint8_t type = r.u8();
  const std::uint8_t ssc = r.u8();
  if (type < 1 || type > 5 || ssc < 1 || ssc > 3) return std::nullopt;
  m.type = static_cast<PduSessionType>(type);
  m.ssc = static_cast<SscMode>(ssc);
  const auto dnn = Dnn::decode(r);
  if (!dnn) return std::nullopt;
  m.dnn = *dnn;
  const bool ok = parse_tlvs(r, [&](std::uint8_t tag, Reader& vr) {
    if (tag == kIeiSnssai) {
      const auto s = SNssai::decode(vr);
      if (!s) return false;
      m.snssai = *s;
      return true;
    }
    return false;
  });
  if (!ok) return std::nullopt;
  return m;
}

void encode_body(Writer& w, const PduSessionEstablishmentAccept& m) {
  w.u8(static_cast<std::uint8_t>(m.type));
  w.raw(BytesView(m.ue_addr.octets.data(), m.ue_addr.octets.size()));
  w.raw(BytesView(m.dns_addr.octets.data(), m.dns_addr.octets.size()));
  m.qos.encode(w);
  if (m.tft) encode_ie_tlv(w, kIeiTft, *m.tft);
}

std::optional<PduSessionEstablishmentAccept> decode_pdu_estb_accept(
    Reader& r, const SmHeader& hdr) {
  PduSessionEstablishmentAccept m;
  m.hdr = hdr;
  const std::uint8_t type = r.u8();
  if (type < 1 || type > 5) return std::nullopt;
  m.type = static_cast<PduSessionType>(type);
  const BytesView ue = r.raw(4);
  const BytesView dns = r.raw(4);
  if (!r.ok()) return std::nullopt;
  for (std::size_t i = 0; i < 4; ++i) {
    m.ue_addr.octets[i] = ue[i];
    m.dns_addr.octets[i] = dns[i];
  }
  const auto q = QosRule::decode(r);
  if (!q) return std::nullopt;
  m.qos = *q;
  const bool ok = parse_tlvs(r, [&](std::uint8_t tag, Reader& vr) {
    if (tag == kIeiTft) {
      const auto t = Tft::decode(vr);
      if (!t) return false;
      m.tft = *t;
      return true;
    }
    return false;
  });
  if (!ok) return std::nullopt;
  return m;
}

void encode_body(Writer& w, const PduSessionEstablishmentReject& m) {
  w.u8(m.cause);
  if (m.backoff_seconds) encode_u32_tlv(w, kIeiBackoff, *m.backoff_seconds);
}

std::optional<PduSessionEstablishmentReject> decode_pdu_estb_reject(
    Reader& r, const SmHeader& hdr) {
  PduSessionEstablishmentReject m;
  m.hdr = hdr;
  m.cause = r.u8();
  const bool ok = parse_tlvs(r, [&](std::uint8_t tag, Reader& vr) {
    if (tag == kIeiBackoff) {
      m.backoff_seconds = vr.u32();
      return vr.ok();
    }
    return false;
  });
  if (!ok) return std::nullopt;
  return m;
}

void encode_body(Writer& w, const PduSessionModificationRequest& m) {
  if (m.tft) encode_ie_tlv(w, kIeiTft, *m.tft);
  if (m.qos) encode_ie_tlv(w, kIeiQos, *m.qos);
}

std::optional<PduSessionModificationRequest> decode_pdu_mod_request(
    Reader& r, const SmHeader& hdr) {
  PduSessionModificationRequest m;
  m.hdr = hdr;
  const bool ok = parse_tlvs(r, [&](std::uint8_t tag, Reader& vr) {
    if (tag == kIeiTft) {
      const auto t = Tft::decode(vr);
      if (!t) return false;
      m.tft = *t;
      return true;
    }
    if (tag == kIeiQos) {
      const auto q = QosRule::decode(vr);
      if (!q) return false;
      m.qos = *q;
      return true;
    }
    return false;
  });
  if (!ok) return std::nullopt;
  return m;
}

void encode_body(Writer& w, const PduSessionModificationReject& m) {
  w.u8(m.cause);
}

std::optional<PduSessionModificationReject> decode_pdu_mod_reject(
    Reader& r, const SmHeader& hdr) {
  PduSessionModificationReject m;
  m.hdr = hdr;
  m.cause = r.u8();
  if (!r.done()) return std::nullopt;
  return m;
}

void encode_body(Writer& w, const PduSessionModificationCommand& m) {
  if (m.tft) encode_ie_tlv(w, kIeiTft, *m.tft);
  if (m.qos) encode_ie_tlv(w, kIeiQos, *m.qos);
  if (m.dns_addr) {
    w.u8(kIeiDns);
    w.u8(static_cast<std::uint8_t>(m.dns_addr->octets.size()));
    w.raw(BytesView(m.dns_addr->octets.data(), m.dns_addr->octets.size()));
  }
}

std::optional<PduSessionModificationCommand> decode_pdu_mod_command(
    Reader& r, const SmHeader& hdr) {
  PduSessionModificationCommand m;
  m.hdr = hdr;
  const bool ok = parse_tlvs(r, [&](std::uint8_t tag, Reader& vr) {
    if (tag == kIeiTft) {
      const auto t = Tft::decode(vr);
      if (!t) return false;
      m.tft = *t;
      return true;
    }
    if (tag == kIeiQos) {
      const auto q = QosRule::decode(vr);
      if (!q) return false;
      m.qos = *q;
      return true;
    }
    if (tag == kIeiDns) {
      const BytesView a = vr.raw(4);
      if (!vr.ok()) return false;
      Ipv4 ip;
      for (std::size_t i = 0; i < 4; ++i) ip.octets[i] = a[i];
      m.dns_addr = ip;
      return true;
    }
    return false;
  });
  if (!ok) return std::nullopt;
  return m;
}

void encode_body(Writer&, const PduSessionReleaseRequest&) {}

void encode_body(Writer& w, const PduSessionReleaseCommand& m) {
  w.u8(m.cause);
}

std::optional<PduSessionReleaseCommand> decode_pdu_release_command(
    Reader& r, const SmHeader& hdr) {
  PduSessionReleaseCommand m;
  m.hdr = hdr;
  m.cause = r.u8();
  if (!r.done()) return std::nullopt;
  return m;
}

void encode_body(Writer&, const PduSessionReleaseComplete&) {}

// ------------------------------------------------------------- type map

template <typename T>
struct MsgTraits;

#define SEED_MSG_TRAITS(Type, Enum, IsSm)                  \
  template <>                                              \
  struct MsgTraits<Type> {                                 \
    static constexpr MsgType kType = MsgType::Enum;        \
    static constexpr bool kSm = IsSm;                      \
  }

SEED_MSG_TRAITS(RegistrationRequest, kRegistrationRequest, false);
SEED_MSG_TRAITS(RegistrationAccept, kRegistrationAccept, false);
SEED_MSG_TRAITS(RegistrationReject, kRegistrationReject, false);
SEED_MSG_TRAITS(DeregistrationRequest, kDeregistrationRequest, false);
SEED_MSG_TRAITS(ServiceRequest, kServiceRequest, false);
SEED_MSG_TRAITS(ServiceAccept, kServiceAccept, false);
SEED_MSG_TRAITS(ServiceReject, kServiceReject, false);
SEED_MSG_TRAITS(AuthenticationRequest, kAuthenticationRequest, false);
SEED_MSG_TRAITS(AuthenticationResponse, kAuthenticationResponse, false);
SEED_MSG_TRAITS(AuthenticationReject, kAuthenticationReject, false);
SEED_MSG_TRAITS(AuthenticationFailure, kAuthenticationFailure, false);
SEED_MSG_TRAITS(SecurityModeCommand, kSecurityModeCommand, false);
SEED_MSG_TRAITS(SecurityModeComplete, kSecurityModeComplete, false);
SEED_MSG_TRAITS(ConfigurationUpdateCommand, kConfigurationUpdateCommand,
                false);
SEED_MSG_TRAITS(PduSessionEstablishmentRequest,
                kPduSessionEstablishmentRequest, true);
SEED_MSG_TRAITS(PduSessionEstablishmentAccept, kPduSessionEstablishmentAccept,
                true);
SEED_MSG_TRAITS(PduSessionEstablishmentReject, kPduSessionEstablishmentReject,
                true);
SEED_MSG_TRAITS(PduSessionModificationRequest,
                kPduSessionModificationRequest, true);
SEED_MSG_TRAITS(PduSessionModificationReject, kPduSessionModificationReject,
                true);
SEED_MSG_TRAITS(PduSessionModificationCommand, kPduSessionModificationCommand,
                true);
SEED_MSG_TRAITS(PduSessionReleaseRequest, kPduSessionReleaseRequest, true);
SEED_MSG_TRAITS(PduSessionReleaseCommand, kPduSessionReleaseCommand, true);
SEED_MSG_TRAITS(PduSessionReleaseComplete, kPduSessionReleaseComplete, true);

#undef SEED_MSG_TRAITS

}  // namespace

std::string_view msg_type_name(MsgType t) {
  switch (t) {
    case MsgType::kRegistrationRequest: return "Registration Request";
    case MsgType::kRegistrationAccept: return "Registration Accept";
    case MsgType::kRegistrationReject: return "Registration Reject";
    case MsgType::kDeregistrationRequest: return "Deregistration Request";
    case MsgType::kServiceRequest: return "Service Request";
    case MsgType::kServiceReject: return "Service Reject";
    case MsgType::kServiceAccept: return "Service Accept";
    case MsgType::kConfigurationUpdateCommand:
      return "Configuration Update Command";
    case MsgType::kAuthenticationRequest: return "Authentication Request";
    case MsgType::kAuthenticationResponse: return "Authentication Response";
    case MsgType::kAuthenticationReject: return "Authentication Reject";
    case MsgType::kAuthenticationFailure: return "Authentication Failure";
    case MsgType::kSecurityModeCommand: return "Security Mode Command";
    case MsgType::kSecurityModeComplete: return "Security Mode Complete";
    case MsgType::kPduSessionEstablishmentRequest:
      return "PDU Session Establishment Request";
    case MsgType::kPduSessionEstablishmentAccept:
      return "PDU Session Establishment Accept";
    case MsgType::kPduSessionEstablishmentReject:
      return "PDU Session Establishment Reject";
    case MsgType::kPduSessionModificationRequest:
      return "PDU Session Modification Request";
    case MsgType::kPduSessionModificationReject:
      return "PDU Session Modification Reject";
    case MsgType::kPduSessionModificationCommand:
      return "PDU Session Modification Command";
    case MsgType::kPduSessionReleaseRequest:
      return "PDU Session Release Request";
    case MsgType::kPduSessionReleaseCommand:
      return "PDU Session Release Command";
    case MsgType::kPduSessionReleaseComplete:
      return "PDU Session Release Complete";
  }
  return "Unknown";
}

namespace {

void encode_to_writer(Writer& w, const NasMessage& msg) {
  std::visit(
      [&](const auto& m) {
        using T = std::decay_t<decltype(m)>;
        if constexpr (MsgTraits<T>::kSm) {
          write_sm_header(w, m.hdr, MsgTraits<T>::kType);
        } else {
          write_mm_header(w, MsgTraits<T>::kType);
        }
        encode_body(w, m);
      },
      msg);
}

}  // namespace

Bytes encode_message(const NasMessage& msg) {
  PROF_ZONE("nas.encode");
  Writer w;
  encode_to_writer(w, msg);
  Bytes wire = std::move(w).take();
  PROF_BYTES(wire.size());
  PROF_ALLOC(wire.size());
  return wire;
}

BytesView encode_message_into(const NasMessage& msg, Bytes& scratch) {
  PROF_ZONE("nas.encode");
  const std::size_t warm_capacity = scratch.capacity();
  Writer w(std::move(scratch));
  encode_to_writer(w, msg);
  scratch = std::move(w).take();
  PROF_BYTES(scratch.size());
  // A real allocation happened only if the scratch outgrew its warmed-up
  // capacity; steady state (pooled buffers) records zero allocs. Counted
  // by message size, not capacity, so the profile stays platform-exact.
  if (scratch.capacity() > warm_capacity) PROF_ALLOC(scratch.size());
  return scratch;
}

std::string_view decode_error_name(DecodeError e) {
  switch (e) {
    case DecodeError::kNone: return "none";
    case DecodeError::kTruncated: return "truncated";
    case DecodeError::kBadProtocol: return "bad-protocol";
    case DecodeError::kBadSecurityHeader: return "bad-security-header";
    case DecodeError::kUnknownType: return "unknown-type";
    case DecodeError::kBadFieldValue: return "bad-field-value";
    case DecodeError::kTrailingBytes: return "trailing-bytes";
  }
  return "invalid";
}

std::optional<NasMessage> decode_message(BytesView data) {
  DecodeError err;
  return decode_message(data, &err);
}

std::optional<NasMessage> decode_message(BytesView data, DecodeError* err) {
  PROF_ZONE("nas.decode");
  PROF_BYTES(data.size());
  *err = DecodeError::kNone;
  Reader r(data);
  const std::uint8_t epd = r.u8();
  if (!r.ok()) {
    *err = DecodeError::kTruncated;
    return std::nullopt;
  }

  // Classifies a body decoder's nullopt from the reader state: the first
  // failure being an out-of-bounds read means truncated input; a clean
  // reader with leftover bytes means trailing garbage; anything else is
  // a field that decoded but held an invalid value.
  auto wrap = [err, &r](auto&& opt) -> std::optional<NasMessage> {
    if (!opt) {
      if (!r.ok()) {
        *err = r.truncated() ? DecodeError::kTruncated
                             : DecodeError::kBadFieldValue;
      } else if (!r.done()) {
        *err = DecodeError::kTrailingBytes;
      } else {
        *err = DecodeError::kBadFieldValue;
      }
      return std::nullopt;
    }
    return NasMessage(*opt);
  };
  // Empty-body messages: anything after the header is trailing garbage.
  auto empty_body = [err, &r](auto msg) -> std::optional<NasMessage> {
    if (r.done()) return NasMessage(msg);
    *err = r.truncated() ? DecodeError::kTruncated
                         : DecodeError::kTrailingBytes;
    return std::nullopt;
  };

  if (epd == kEpd5gmm) {
    const std::uint8_t sec = r.u8();
    const std::uint8_t type = r.u8();
    if (!r.ok()) {
      *err = DecodeError::kTruncated;
      return std::nullopt;
    }
    if (sec != 0) {
      *err = DecodeError::kBadSecurityHeader;
      return std::nullopt;
    }
    switch (static_cast<MsgType>(type)) {
      case MsgType::kRegistrationRequest:
        return wrap(decode_registration_request(r));
      case MsgType::kRegistrationAccept:
        return wrap(decode_registration_accept(r));
      case MsgType::kRegistrationReject:
        return wrap(decode_registration_reject(r));
      case MsgType::kDeregistrationRequest:
        return wrap(decode_deregistration_request(r));
      case MsgType::kServiceRequest:
        return wrap(decode_service_request(r));
      case MsgType::kServiceAccept:
        return empty_body(ServiceAccept{});
      case MsgType::kServiceReject:
        return wrap(decode_service_reject(r));
      case MsgType::kAuthenticationRequest:
        return wrap(decode_authentication_request(r));
      case MsgType::kAuthenticationResponse:
        return wrap(decode_authentication_response(r));
      case MsgType::kAuthenticationReject:
        return empty_body(AuthenticationReject{});
      case MsgType::kAuthenticationFailure:
        return wrap(decode_authentication_failure(r));
      case MsgType::kSecurityModeCommand:
        return wrap(decode_security_mode_command(r));
      case MsgType::kSecurityModeComplete:
        return empty_body(SecurityModeComplete{});
      case MsgType::kConfigurationUpdateCommand:
        return wrap(decode_configuration_update(r));
      default:
        *err = DecodeError::kUnknownType;
        return std::nullopt;
    }
  }

  if (epd == kEpd5gsm) {
    SmHeader hdr;
    hdr.pdu_session_id = r.u8();
    hdr.pti = r.u8();
    const std::uint8_t type = r.u8();
    if (!r.ok()) {
      *err = DecodeError::kTruncated;
      return std::nullopt;
    }
    switch (static_cast<MsgType>(type)) {
      case MsgType::kPduSessionEstablishmentRequest:
        return wrap(decode_pdu_estb_request(r, hdr));
      case MsgType::kPduSessionEstablishmentAccept:
        return wrap(decode_pdu_estb_accept(r, hdr));
      case MsgType::kPduSessionEstablishmentReject:
        return wrap(decode_pdu_estb_reject(r, hdr));
      case MsgType::kPduSessionModificationRequest:
        return wrap(decode_pdu_mod_request(r, hdr));
      case MsgType::kPduSessionModificationReject:
        return wrap(decode_pdu_mod_reject(r, hdr));
      case MsgType::kPduSessionModificationCommand:
        return wrap(decode_pdu_mod_command(r, hdr));
      case MsgType::kPduSessionReleaseRequest:
        return empty_body(PduSessionReleaseRequest{hdr});
      case MsgType::kPduSessionReleaseCommand:
        return wrap(decode_pdu_release_command(r, hdr));
      case MsgType::kPduSessionReleaseComplete:
        return empty_body(PduSessionReleaseComplete{hdr});
      default:
        *err = DecodeError::kUnknownType;
        return std::nullopt;
    }
  }

  *err = DecodeError::kBadProtocol;
  return std::nullopt;
}

MsgType message_type(const NasMessage& msg) {
  return std::visit(
      [](const auto& m) {
        return MsgTraits<std::decay_t<decltype(m)>>::kType;
      },
      msg);
}

bool is_sm_message(MsgType t) {
  return static_cast<std::uint8_t>(t) >= 0xc0;
}

bool carries_cause(MsgType t) {
  switch (t) {
    case MsgType::kRegistrationReject:
    case MsgType::kServiceReject:
    case MsgType::kAuthenticationFailure:
    case MsgType::kPduSessionEstablishmentReject:
    case MsgType::kPduSessionModificationReject:
    case MsgType::kPduSessionReleaseCommand:
      return true;
    default:
      return false;
  }
}

std::optional<std::pair<Plane, std::uint8_t>> extract_cause(
    const NasMessage& msg) {
  using Result = std::optional<std::pair<Plane, std::uint8_t>>;
  return std::visit(
      [](const auto& m) -> Result {
        using T = std::decay_t<decltype(m)>;
        if constexpr (std::is_same_v<T, RegistrationReject> ||
                      std::is_same_v<T, ServiceReject> ||
                      std::is_same_v<T, AuthenticationFailure>) {
          return std::make_pair(Plane::kControl, m.cause);
        } else if constexpr (std::is_same_v<T, PduSessionEstablishmentReject> ||
                             std::is_same_v<T, PduSessionModificationReject> ||
                             std::is_same_v<T, PduSessionReleaseCommand>) {
          return std::make_pair(Plane::kData, m.cause);
        } else {
          return std::nullopt;
        }
      },
      msg);
}

}  // namespace seed::nas
