// NAS information elements used by the message codecs and by SEED's
// config-update payloads (Appendix A: suggested DNN, S-NSSAI, TFT, 5QI...).
//
// Wire formats follow the 3GPP shapes (DNN label encoding per TS 23.003,
// TFT packet-filter components per TS 24.008 §10.5.6.12) at the fidelity
// the simulation needs; see DESIGN.md for the substitution rationale.
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/codec.h"

namespace seed::nas {

// ------------------------------------------------------------- identities

struct PlmnId {
  std::uint16_t mcc = 0;  // 3 decimal digits
  std::uint16_t mnc = 0;  // 2-3 decimal digits
  auto operator<=>(const PlmnId&) const = default;

  void encode(Writer& w) const;
  static std::optional<PlmnId> decode(Reader& r);
  std::string to_string() const;
};

/// Tracking area identity.
struct Tai {
  PlmnId plmn;
  std::uint32_t tac = 0;  // 24-bit tracking area code
  auto operator<=>(const Tai&) const = default;

  void encode(Writer& w) const;
  static std::optional<Tai> decode(Reader& r);
};

/// 5G-GUTI: temporary identity assigned by the AMF.
struct Guti {
  PlmnId plmn;
  std::uint8_t amf_region = 0;
  std::uint16_t amf_set = 0;   // 10 bits used
  std::uint32_t tmsi = 0;
  auto operator<=>(const Guti&) const = default;

  void encode(Writer& w) const;
  static std::optional<Guti> decode(Reader& r);
};

/// SUCI (concealed SUPI); the simulation carries the MSIN digits opaquely.
struct Suci {
  PlmnId plmn;
  std::string msin;  // decimal digits
  auto operator<=>(const Suci&) const = default;

  void encode(Writer& w) const;
  static std::optional<Suci> decode(Reader& r);
  std::string to_string() const;
};

/// Mobile identity choice carried in Registration Request.
struct MobileIdentity {
  enum class Kind : std::uint8_t { kNone = 0, kSuci = 1, kGuti = 2 };
  Kind kind = Kind::kNone;
  Suci suci;
  Guti guti;
  bool operator==(const MobileIdentity&) const = default;

  void encode(Writer& w) const;
  static std::optional<MobileIdentity> decode(Reader& r);
};

// ----------------------------------------------------------- slice / DNN

/// Single network slice selection assistance info.
struct SNssai {
  std::uint8_t sst = 1;                   // slice/service type
  std::optional<std::uint32_t> sd;        // 24-bit slice differentiator
  auto operator<=>(const SNssai&) const = default;

  void encode(Writer& w) const;
  static std::optional<SNssai> decode(Reader& r);
  std::string to_string() const;
};

/// Data Network Name, encoded as length-prefixed labels (TS 23.003 §9.1).
/// SEED's uplink channel hides encrypted diagnosis bytes in DNN labels
/// ("DIAG"-prefixed, §4.5); Dnn therefore allows arbitrary octets in
/// labels while round-tripping exactly.
class Dnn {
 public:
  Dnn() = default;
  /// From dotted text ("internet", "ims.carrier.com").
  explicit Dnn(std::string_view dotted);
  /// From raw labels (may contain non-ASCII payload bytes).
  static Dnn from_labels(std::vector<Bytes> labels);

  const std::vector<Bytes>& labels() const { return labels_; }
  /// Dotted representation; payload bytes are hex-escaped for display only.
  std::string to_string() const;
  bool empty() const { return labels_.empty(); }
  /// Total wire size (1 length byte per label + label bytes).
  std::size_t wire_size() const;

  bool operator==(const Dnn&) const = default;

  void encode(Writer& w) const;  // lv8 of the label sequence
  static std::optional<Dnn> decode(Reader& r);

  /// Max wire size accepted by the network (paper: "100B DNN size").
  static constexpr std::size_t kMaxWireSize = 100;

 private:
  std::vector<Bytes> labels_;
};

// --------------------------------------------------------------- sessions

enum class PduSessionType : std::uint8_t {
  kIpv4 = 1,
  kIpv6 = 2,
  kIpv4v6 = 3,
  kUnstructured = 4,
  kEthernet = 5,
};

enum class SscMode : std::uint8_t { kMode1 = 1, kMode2 = 2, kMode3 = 3 };

struct Ipv4 {
  std::array<std::uint8_t, 4> octets{};
  auto operator<=>(const Ipv4&) const = default;
  std::string to_string() const;
  static Ipv4 from_string(std::string_view dotted);  // throws on bad input
};

// --------------------------------------------------------------- TFT / QoS

enum class IpProtocol : std::uint8_t { kAny = 0, kTcp = 6, kUdp = 17 };

/// One packet filter of a Traffic Flow Template.
struct PacketFilter {
  enum class Direction : std::uint8_t {
    kDownlink = 1,
    kUplink = 2,
    kBidirectional = 3
  };
  std::uint8_t id = 0;            // 4-bit filter id
  Direction direction = Direction::kBidirectional;
  std::uint8_t precedence = 0;
  IpProtocol protocol = IpProtocol::kAny;
  std::optional<Ipv4> remote_addr;
  std::optional<std::uint16_t> remote_port_lo;
  std::optional<std::uint16_t> remote_port_hi;  // range end (inclusive)
  auto operator<=>(const PacketFilter&) const = default;

  void encode(Writer& w) const;
  static std::optional<PacketFilter> decode(Reader& r);

  /// True when a packet (proto, remote ip, remote port, direction) matches.
  bool matches(IpProtocol proto, const Ipv4& addr, std::uint16_t port,
               Direction dir) const;
};

/// Traffic Flow Template: an operation plus packet filters.
struct Tft {
  enum class Operation : std::uint8_t {
    kCreateNew = 1,
    kDeleteExisting = 2,
    kAddFilters = 3,
    kReplaceFilters = 4,
    kDeleteFilters = 5,
  };
  Operation op = Operation::kCreateNew;
  std::vector<PacketFilter> filters;
  bool operator==(const Tft&) const = default;

  void encode(Writer& w) const;
  static std::optional<Tft> decode(Reader& r);

  /// Semantic validation (TS 24.008-style): duplicate filter ids or
  /// create/replace with no filters are semantic errors.
  bool semantically_valid() const;
};

/// Minimal QoS rule: 5QI plus optional bitrates.
struct QosRule {
  std::uint8_t fiveqi = 9;  // default non-GBR
  std::uint32_t mbr_ul_kbps = 0;
  std::uint32_t mbr_dl_kbps = 0;
  auto operator<=>(const QosRule&) const = default;

  void encode(Writer& w) const;
  static std::optional<QosRule> decode(Reader& r);
};

/// 5QIs a simulated gNB/UPF supports (standardized subset).
bool is_standard_5qi(std::uint8_t v);

}  // namespace seed::nas
