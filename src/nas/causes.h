// Standardized 5G failure cause registry (TS 24.501-style).
//
// This is the table the SEED SIM applet stores in full (paper §4.3.1:
// "5G defines 80+ failure codes ... the SIM applet stores all standardized
// cause codes"). Each cause carries the metadata SEED's diagnosis needs:
// which plane it belongs to, a coarse category, whether it is one of the
// Appendix-A config-related causes (and which configuration the
// infrastructure should attach), and whether recovery requires user action
// (expired plan, unauthorized subscriber) — those are the cases SEED
// cannot fix (paper §7.1.1: 89.4% / 95.5% coverage).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string_view>

namespace seed::nas {

enum class Plane : std::uint8_t { kControl, kData };

/// 5GMM (control-plane management) causes, TS 24.501 §9.11.3.2.
enum class MmCause : std::uint8_t {
  kIllegalUe = 3,
  kPeiNotAccepted = 5,
  kIllegalMe = 6,
  kServicesNotAllowed = 7,
  kUeIdentityCannotBeDerived = 9,
  kImplicitlyDeregistered = 10,
  kPlmnNotAllowed = 11,
  kTrackingAreaNotAllowed = 12,
  kRoamingNotAllowedInTa = 13,
  kNoSuitableCellsInTrackingArea = 15,
  kMacFailure = 20,
  kSynchFailure = 21,
  kCongestion = 22,
  kUeSecurityCapabilitiesMismatch = 23,
  kSecurityModeRejectedUnspecified = 24,
  kNon5gAuthenticationUnacceptable = 26,
  kN1ModeNotAllowed = 27,
  kRestrictedServiceArea = 28,
  kRedirectionToEpcRequired = 31,
  kLadnNotAvailable = 43,
  kNoEpsBearerContextActivated = 50,
  kMaximumNumberOfPduSessionsReached = 65,
  kInsufficientResourcesForSliceAndDnn = 67,
  kInsufficientResourcesForSlice = 69,
  kNgKsiAlreadyInUse = 71,
  kNon3gppAccessTo5gcnNotAllowed = 72,
  kServingNetworkNotAuthorized = 73,
  kNoNetworkSlicesAvailable = 62,
  kPayloadWasNotForwarded = 90,
  kDnnNotSupportedInSlice = 91,
  kInsufficientUserPlaneResources = 92,
  kSemanticallyIncorrectMessage = 95,
  kInvalidMandatoryInformation = 96,
  kMessageTypeNonExistent = 97,
  kMessageTypeNotCompatibleWithState = 98,
  kIeNonExistent = 99,
  kConditionalIeError = 100,
  kMessageNotCompatibleWithState = 101,
  kProtocolErrorUnspecified = 111,
};

/// 5GSM (data-plane management) causes, TS 24.501 §9.11.4.2.
enum class SmCause : std::uint8_t {
  kOperatorDeterminedBarring = 8,
  kInsufficientResources = 26,
  kMissingOrUnknownDnn = 27,
  kUnknownPduSessionType = 28,
  kUserAuthenticationFailed = 29,
  kRequestRejectedUnspecified = 31,
  kServiceOptionNotSupported = 32,
  kServiceOptionNotSubscribed = 33,
  kPtiAlreadyInUse = 35,
  kRegularDeactivation = 36,
  kNetworkFailure = 38,
  kReactivationRequested = 39,
  kSemanticErrorInTft = 41,
  kSyntacticalErrorInTft = 42,
  kInvalidPduSessionIdentity = 43,
  kSemanticErrorsInPacketFilters = 44,
  kSyntacticalErrorsInPacketFilters = 45,
  kOutOfLadnServiceArea = 46,
  kPtiMismatch = 47,
  kPduTypeIpv4OnlyAllowed = 50,
  kPduTypeIpv6OnlyAllowed = 51,
  kPduSessionDoesNotExist = 54,
  kInsufficientResourcesForSliceAndDnn = 67,
  kNotSupportedSscMode = 68,
  kInsufficientResourcesForSlice = 69,
  kMissingOrUnknownDnnInSlice = 70,
  kUnsupported5QiValue = 59,
  kInvalidPtiValue = 81,
  kMaxDataRateForUpIntegrityTooLow = 82,
  kSemanticErrorInQosOperation = 83,
  kSyntacticalErrorInQosOperation = 84,
  kInvalidMappedEpsBearerIdentity = 85,
  kSemanticallyIncorrectMessage = 95,
  kInvalidMandatoryInformation = 96,
  kMessageTypeNonExistent = 97,
  kMessageTypeNotCompatibleWithState = 98,
  kIeNonExistent = 99,
  kConditionalIeError = 100,
  kMessageNotCompatibleWithState = 101,
  kProtocolErrorUnspecified = 111,
};

/// Which configuration item the infrastructure attaches alongside a
/// config-related cause (paper Appendix A).
enum class ConfigKind : std::uint8_t {
  kNone = 0,
  kSupportedRat,
  kSuggestedSnssai,
  kSuggestedDnn,
  kSuggestedSessionType,
  kSuggestedTft,
  kActivatedPduSession,
  kSuggestedPacketFilter,
  kSuggested5qi,
  kInvalidOrMissedConfig,
};

enum class CauseCategory : std::uint8_t {
  kIdentification,   // UE identity / state sync problems
  kSubscription,     // subscription options / barring
  kCongestion,       // cell or core overload
  kAuthentication,   // security check failures
  kInvalidMessage,   // malformed or state-mismatched signaling
  kConfiguration,    // outdated / wrong configurations
  kResource,         // insufficient resources
  kMobility,         // area restrictions / cell selection
  kProtocolError,    // unspecified protocol errors
};

struct CauseInfo {
  std::uint8_t code;
  Plane plane;
  std::string_view name;
  CauseCategory category;
  ConfigKind config;            // != kNone → Appendix-A config-related
  bool user_action_required;    // SEED cannot recover without the user
};

/// Full registries. Stable order, by code.
std::span<const CauseInfo> all_mm_causes();
std::span<const CauseInfo> all_sm_causes();

/// Lookup; nullptr when the code is not standardized (SEED then treats it
/// as a customized/unknown cause, §5).
const CauseInfo* find_cause(Plane plane, std::uint8_t code);
inline const CauseInfo* find_cause(MmCause c) {
  return find_cause(Plane::kControl, static_cast<std::uint8_t>(c));
}
inline const CauseInfo* find_cause(SmCause c) {
  return find_cause(Plane::kData, static_cast<std::uint8_t>(c));
}

/// Appendix-A helper: which config should accompany this cause?
ConfigKind config_kind_for(Plane plane, std::uint8_t code);

/// Human-readable name; "unknown-cause" when unregistered.
std::string_view cause_name(Plane plane, std::uint8_t code);

/// Approximate in-SIM footprint of the registry in bytes (used by the
/// applet storage budget model; the paper argues 32–128 KB suffices).
std::size_t registry_storage_bytes();

}  // namespace seed::nas
