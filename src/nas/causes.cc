#include "nas/causes.h"

#include <algorithm>
#include <array>

namespace seed::nas {

namespace {

using enum CauseCategory;
using enum ConfigKind;

constexpr Plane kCp = Plane::kControl;
constexpr Plane kDp = Plane::kData;

// 5GMM causes. Appendix-A config mappings follow the paper exactly:
// #26/#27/#31/#72 -> supported RAT, #62 -> suggested S-NSSAI,
// #91 -> suggested DNN, #95/#96/#100 -> invalid/missed config.
constexpr std::array<CauseInfo, 39> kMmCauses = {{
    {3, kCp, "Illegal UE", kAuthentication, kNone, true},
    {5, kCp, "PEI not accepted", kIdentification, kNone, true},
    {6, kCp, "Illegal ME", kAuthentication, kNone, true},
    {7, kCp, "5GS services not allowed", kSubscription, kNone, true},
    {9, kCp, "UE identity cannot be derived by the network", kIdentification,
     kNone, false},
    {10, kCp, "Implicitly de-registered", kIdentification, kNone, false},
    // #11/#15 are not in the paper's Appendix-A list, but SEED's A2 action
    // explicitly refreshes the PLMN priority list for them ("updates the
    // control-plane configurations (e.g., PLMN list) to reduce excessive
    // search time", §4.4.1) — so the registry marks them config-bearing.
    {11, kCp, "PLMN not allowed", kMobility, kSupportedRat, false},
    {12, kCp, "Tracking area not allowed", kMobility, kNone, false},
    {13, kCp, "Roaming not allowed in this tracking area", kMobility, kNone,
     false},
    {15, kCp, "No suitable cells in tracking area", kMobility, kSupportedRat,
     false},
    {20, kCp, "MAC failure", kAuthentication, kNone, false},
    {21, kCp, "Synch failure", kAuthentication, kNone, false},
    {22, kCp, "Congestion", kCongestion, kNone, false},
    {23, kCp, "UE security capabilities mismatch", kAuthentication, kNone,
     false},
    {24, kCp, "Security mode rejected, unspecified", kAuthentication, kNone,
     false},
    {26, kCp, "Non-5G authentication unacceptable", kConfiguration,
     kSupportedRat, false},
    {27, kCp, "N1 mode not allowed", kConfiguration, kSupportedRat, false},
    {28, kCp, "Restricted service area", kMobility, kNone, false},
    {31, kCp, "Redirection to EPC required", kConfiguration, kSupportedRat,
     false},
    {43, kCp, "LADN not available", kMobility, kNone, false},
    {50, kCp, "No EPS bearer context activated", kIdentification, kNone,
     false},
    {62, kCp, "No network slices available", kConfiguration, kSuggestedSnssai,
     false},
    {65, kCp, "Maximum number of PDU sessions reached", kResource, kNone,
     false},
    {67, kCp, "Insufficient resources for specific slice and DNN", kResource,
     kNone, false},
    {69, kCp, "Insufficient resources for specific slice", kResource, kNone,
     false},
    {71, kCp, "ngKSI already in use", kAuthentication, kNone, false},
    {72, kCp, "Non-3GPP access to 5GCN not allowed", kConfiguration,
     kSupportedRat, false},
    {73, kCp, "Serving network not authorized", kSubscription, kNone, true},
    {90, kCp, "Payload was not forwarded", kProtocolError, kNone, false},
    {91, kCp, "DNN not supported or not subscribed in the slice",
     kConfiguration, kSuggestedDnn, false},
    {92, kCp, "Insufficient user-plane resources for the PDU session",
     kResource, kNone, false},
    {95, kCp, "Semantically incorrect message", kInvalidMessage,
     kInvalidOrMissedConfig, false},
    {96, kCp, "Invalid mandatory information", kInvalidMessage,
     kInvalidOrMissedConfig, false},
    {97, kCp, "Message type non-existent or not implemented", kInvalidMessage,
     kNone, false},
    {98, kCp, "Message type not compatible with the protocol state",
     kInvalidMessage, kNone, false},
    {99, kCp, "Information element non-existent or not implemented",
     kInvalidMessage, kNone, false},
    {100, kCp, "Conditional IE error", kInvalidMessage, kInvalidOrMissedConfig,
     false},
    {101, kCp, "Message not compatible with the protocol state",
     kInvalidMessage, kNone, false},
    {111, kCp, "Protocol error, unspecified", kProtocolError, kNone, false},
}};

// 5GSM causes. Appendix-A config mappings follow the paper:
// #27/#33/#39/#70 -> suggested DNN, #28 -> session type, #41/#42 -> TFT,
// #43/#54 -> activated PDU session, #44/#45/#68/#83/#84 -> packet filter,
// #59 -> 5QI, #95/#96/#100 -> invalid/missed config.
constexpr std::array<CauseInfo, 40> kSmCauses = {{
    {8, kDp, "Operator determined barring", kSubscription, kNone, true},
    {26, kDp, "Insufficient resources", kResource, kNone, false},
    {27, kDp, "Missing or unknown DNN", kConfiguration, kSuggestedDnn, false},
    {28, kDp, "Unknown PDU session type", kConfiguration,
     kSuggestedSessionType, false},
    {29, kDp, "User authentication or authorization failed", kAuthentication,
     kNone, true},
    {31, kDp, "Request rejected, unspecified", kProtocolError, kNone, false},
    {32, kDp, "Service option not supported", kSubscription, kNone, false},
    {33, kDp, "Requested service option not subscribed", kConfiguration,
     kSuggestedDnn, false},
    {35, kDp, "PTI already in use", kInvalidMessage, kNone, false},
    {36, kDp, "Regular deactivation", kIdentification, kNone, false},
    {38, kDp, "Network failure", kProtocolError, kNone, false},
    {39, kDp, "Reactivation requested", kConfiguration, kSuggestedDnn, false},
    {41, kDp, "Semantic error in the TFT operation", kConfiguration,
     kSuggestedTft, false},
    {42, kDp, "Syntactical error in the TFT operation", kConfiguration,
     kSuggestedTft, false},
    {43, kDp, "Invalid PDU session identity", kConfiguration,
     kActivatedPduSession, false},
    {44, kDp, "Semantic errors in packet filter(s)", kConfiguration,
     kSuggestedPacketFilter, false},
    {45, kDp, "Syntactical error in packet filter(s)", kConfiguration,
     kSuggestedPacketFilter, false},
    {46, kDp, "Out of LADN service area", kMobility, kNone, false},
    {47, kDp, "PTI mismatch", kInvalidMessage, kNone, false},
    {50, kDp, "PDU session type IPv4 only allowed", kConfiguration,
     kSuggestedSessionType, false},
    {51, kDp, "PDU session type IPv6 only allowed", kConfiguration,
     kSuggestedSessionType, false},
    {54, kDp, "PDU session does not exist", kConfiguration,
     kActivatedPduSession, false},
    {59, kDp, "Unsupported 5QI value", kConfiguration, kSuggested5qi, false},
    {67, kDp, "Insufficient resources for specific slice and DNN", kResource,
     kNone, false},
    {68, kDp, "Not supported SSC mode", kConfiguration,
     kSuggestedPacketFilter, false},
    {69, kDp, "Insufficient resources for specific slice", kResource, kNone,
     false},
    {70, kDp, "Missing or unknown DNN in a slice", kConfiguration,
     kSuggestedDnn, false},
    {81, kDp, "Invalid PTI value", kInvalidMessage, kNone, false},
    {82, kDp, "Maximum data rate for UP integrity protection too low",
     kResource, kNone, false},
    {83, kDp, "Semantic error in the QoS operation", kConfiguration,
     kSuggestedPacketFilter, false},
    {84, kDp, "Syntactical error in the QoS operation", kConfiguration,
     kSuggestedPacketFilter, false},
    {85, kDp, "Invalid mapped EPS bearer identity", kInvalidMessage, kNone,
     false},
    {95, kDp, "Semantically incorrect message", kInvalidMessage,
     kInvalidOrMissedConfig, false},
    {96, kDp, "Invalid mandatory information", kInvalidMessage,
     kInvalidOrMissedConfig, false},
    {97, kDp, "Message type non-existent or not implemented", kInvalidMessage,
     kNone, false},
    {98, kDp, "Message type not compatible with the protocol state",
     kInvalidMessage, kNone, false},
    {99, kDp, "Information element non-existent or not implemented",
     kInvalidMessage, kNone, false},
    {100, kDp, "Conditional IE error", kInvalidMessage,
     kInvalidOrMissedConfig, false},
    {101, kDp, "Message not compatible with the protocol state",
     kInvalidMessage, kNone, false},
    {111, kDp, "Protocol error, unspecified", kProtocolError, kNone, false},
}};

}  // namespace

std::span<const CauseInfo> all_mm_causes() { return kMmCauses; }
std::span<const CauseInfo> all_sm_causes() { return kSmCauses; }

const CauseInfo* find_cause(Plane plane, std::uint8_t code) {
  const auto table = plane == Plane::kControl ? all_mm_causes()
                                              : all_sm_causes();
  const auto it = std::find_if(table.begin(), table.end(),
                               [&](const CauseInfo& c) { return c.code == code; });
  return it == table.end() ? nullptr : &*it;
}

ConfigKind config_kind_for(Plane plane, std::uint8_t code) {
  const CauseInfo* info = find_cause(plane, code);
  return info ? info->config : ConfigKind::kNone;
}

std::string_view cause_name(Plane plane, std::uint8_t code) {
  const CauseInfo* info = find_cause(plane, code);
  return info ? info->name : std::string_view("unknown-cause");
}

std::size_t registry_storage_bytes() {
  // The applet stores per cause: code (1B), plane+category+config flags (1B),
  // user-action flag folded in. Names stay off-SIM.
  return (kMmCauses.size() + kSmCauses.size()) * 2;
}

}  // namespace seed::nas
