#include "nas/ie.h"

#include <charconv>
#include <cstdio>
#include <stdexcept>

namespace seed::nas {

// ------------------------------------------------------------- identities

void PlmnId::encode(Writer& w) const {
  w.u16(mcc);
  w.u16(mnc);
}

std::optional<PlmnId> PlmnId::decode(Reader& r) {
  PlmnId p;
  p.mcc = r.u16();
  p.mnc = r.u16();
  if (!r.ok() || p.mcc > 999 || p.mnc > 999) {
    r.fail();
    return std::nullopt;
  }
  return p;
}

std::string PlmnId::to_string() const {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%03u-%02u", mcc, mnc);
  return buf;
}

void Tai::encode(Writer& w) const {
  plmn.encode(w);
  w.u24(tac & 0xffffff);
}

std::optional<Tai> Tai::decode(Reader& r) {
  Tai t;
  const auto p = PlmnId::decode(r);
  if (!p) return std::nullopt;
  t.plmn = *p;
  t.tac = r.u24();
  if (!r.ok()) return std::nullopt;
  return t;
}

void Guti::encode(Writer& w) const {
  plmn.encode(w);
  w.u8(amf_region);
  w.u16(amf_set & 0x03ff);
  w.u32(tmsi);
}

std::optional<Guti> Guti::decode(Reader& r) {
  Guti g;
  const auto p = PlmnId::decode(r);
  if (!p) return std::nullopt;
  g.plmn = *p;
  g.amf_region = r.u8();
  g.amf_set = r.u16();
  g.tmsi = r.u32();
  if (!r.ok() || g.amf_set > 0x03ff) {
    r.fail();
    return std::nullopt;
  }
  return g;
}

void Suci::encode(Writer& w) const {
  plmn.encode(w);
  w.lv8(to_bytes(msin));
}

std::optional<Suci> Suci::decode(Reader& r) {
  Suci s;
  const auto p = PlmnId::decode(r);
  if (!p) return std::nullopt;
  s.plmn = *p;
  s.msin = seed::to_string(r.lv8());
  if (!r.ok()) return std::nullopt;
  for (char c : s.msin) {
    if (c < '0' || c > '9') {
      r.fail();
      return std::nullopt;
    }
  }
  return s;
}

std::string Suci::to_string() const {
  return plmn.to_string() + "-" + msin;
}

void MobileIdentity::encode(Writer& w) const {
  w.u8(static_cast<std::uint8_t>(kind));
  switch (kind) {
    case Kind::kNone:
      break;
    case Kind::kSuci:
      suci.encode(w);
      break;
    case Kind::kGuti:
      guti.encode(w);
      break;
  }
}

std::optional<MobileIdentity> MobileIdentity::decode(Reader& r) {
  MobileIdentity id;
  const std::uint8_t k = r.u8();
  if (!r.ok()) return std::nullopt;
  switch (k) {
    case 0:
      id.kind = Kind::kNone;
      return id;
    case 1: {
      id.kind = Kind::kSuci;
      const auto s = Suci::decode(r);
      if (!s) return std::nullopt;
      id.suci = *s;
      return id;
    }
    case 2: {
      id.kind = Kind::kGuti;
      const auto g = Guti::decode(r);
      if (!g) return std::nullopt;
      id.guti = *g;
      return id;
    }
    default:
      r.fail();
      return std::nullopt;
  }
}

// ----------------------------------------------------------- slice / DNN

void SNssai::encode(Writer& w) const {
  if (sd) {
    w.u8(4);  // length: sst + 3-byte sd
    w.u8(sst);
    w.u24(*sd & 0xffffff);
  } else {
    w.u8(1);
    w.u8(sst);
  }
}

std::optional<SNssai> SNssai::decode(Reader& r) {
  SNssai s;
  const std::uint8_t len = r.u8();
  if (len == 1) {
    s.sst = r.u8();
  } else if (len == 4) {
    s.sst = r.u8();
    s.sd = r.u24();
  } else {
    r.fail();
    return std::nullopt;
  }
  if (!r.ok()) return std::nullopt;
  return s;
}

std::string SNssai::to_string() const {
  char buf[32];
  if (sd) {
    std::snprintf(buf, sizeof(buf), "sst=%u sd=%06x", sst, *sd);
  } else {
    std::snprintf(buf, sizeof(buf), "sst=%u", sst);
  }
  return buf;
}

Dnn::Dnn(std::string_view dotted) {
  std::size_t start = 0;
  while (start <= dotted.size()) {
    const std::size_t dot = dotted.find('.', start);
    const std::string_view label =
        dotted.substr(start, dot == std::string_view::npos ? std::string_view::npos
                                                           : dot - start);
    if (!label.empty()) labels_.push_back(to_bytes(label));
    if (dot == std::string_view::npos) break;
    start = dot + 1;
  }
}

Dnn Dnn::from_labels(std::vector<Bytes> labels) {
  Dnn d;
  d.labels_ = std::move(labels);
  return d;
}

std::string Dnn::to_string() const {
  std::string out;
  for (std::size_t i = 0; i < labels_.size(); ++i) {
    if (i) out.push_back('.');
    bool printable = true;
    for (std::uint8_t b : labels_[i]) {
      if (b < 0x20 || b > 0x7e || b == '.') {
        printable = false;
        break;
      }
    }
    if (printable) {
      out += seed::to_string(labels_[i]);
    } else {
      out += "0x" + to_hex(labels_[i]);
    }
  }
  return out;
}

std::size_t Dnn::wire_size() const {
  std::size_t n = 0;
  for (const auto& l : labels_) n += 1 + l.size();
  return n;
}

void Dnn::encode(Writer& w) const {
  const std::size_t body = w.lv8_begin();
  for (const auto& l : labels_) w.lv8(l);
  w.lv8_end(body);
}

std::optional<Dnn> Dnn::decode(Reader& r) {
  const BytesView body = r.lv8();
  if (!r.ok()) return std::nullopt;
  // The outer lv8 admits up to 255 bytes but a DNN is capped at
  // kMaxWireSize on the encode side; accepting more here would let a
  // forged IE smuggle oversized label sets past every later bound.
  if (body.size() > kMaxWireSize) {
    r.fail();
    return std::nullopt;
  }
  Reader inner(body);
  std::vector<Bytes> labels;
  while (inner.remaining() > 0) {
    const BytesView label = inner.lv8();
    if (!inner.ok() || label.empty()) {
      r.fail();
      return std::nullopt;
    }
    labels.emplace_back(label.begin(), label.end());
  }
  return from_labels(std::move(labels));
}

// --------------------------------------------------------------- sessions

std::string Ipv4::to_string() const {
  char buf[20];
  std::snprintf(buf, sizeof(buf), "%u.%u.%u.%u", octets[0], octets[1],
                octets[2], octets[3]);
  return buf;
}

Ipv4 Ipv4::from_string(std::string_view dotted) {
  Ipv4 out;
  std::size_t start = 0;
  for (int i = 0; i < 4; ++i) {
    const std::size_t dot = dotted.find('.', start);
    const bool last = (i == 3);
    if (last != (dot == std::string_view::npos)) {
      throw std::invalid_argument("Ipv4: malformed address");
    }
    const std::string_view part = dotted.substr(
        start, last ? std::string_view::npos : dot - start);
    unsigned value = 0;
    const auto [ptr, ec] =
        std::from_chars(part.data(), part.data() + part.size(), value);
    if (ec != std::errc() || ptr != part.data() + part.size() || value > 255) {
      throw std::invalid_argument("Ipv4: malformed octet");
    }
    out.octets[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(value);
    start = dot + 1;
  }
  return out;
}

// --------------------------------------------------------------- TFT / QoS

namespace {
// Component type ids (TS 24.008-inspired).
constexpr std::uint8_t kCompProtocol = 0x30;
constexpr std::uint8_t kCompRemoteAddr = 0x10;
constexpr std::uint8_t kCompPortRange = 0x41;
}  // namespace

void PacketFilter::encode(Writer& w) const {
  w.u8(static_cast<std::uint8_t>((id & 0x0f) |
                                 (static_cast<std::uint8_t>(direction) << 4)));
  w.u8(precedence);
  const std::size_t comps = w.lv8_begin();
  if (protocol != IpProtocol::kAny) {
    w.u8(kCompProtocol);
    w.u8(static_cast<std::uint8_t>(protocol));
  }
  if (remote_addr) {
    w.u8(kCompRemoteAddr);
    w.raw(BytesView(remote_addr->octets.data(), remote_addr->octets.size()));
  }
  if (remote_port_lo) {
    w.u8(kCompPortRange);
    w.u16(*remote_port_lo);
    w.u16(remote_port_hi.value_or(*remote_port_lo));
  }
  w.lv8_end(comps);
}

std::optional<PacketFilter> PacketFilter::decode(Reader& r) {
  PacketFilter f;
  const std::uint8_t head = r.u8();
  f.id = head & 0x0f;
  const std::uint8_t dir = head >> 4;
  if (dir < 1 || dir > 3) {
    r.fail();
    return std::nullopt;
  }
  f.direction = static_cast<Direction>(dir);
  f.precedence = r.u8();
  const BytesView comps = r.lv8();
  if (!r.ok()) return std::nullopt;
  Reader cr(comps);
  while (cr.remaining() > 0) {
    const std::uint8_t type = cr.u8();
    switch (type) {
      case kCompProtocol: {
        const std::uint8_t proto = cr.u8();
        if (proto != 6 && proto != 17) {
          r.fail();
          return std::nullopt;
        }
        f.protocol = static_cast<IpProtocol>(proto);
        break;
      }
      case kCompRemoteAddr: {
        const BytesView a = cr.raw(4);
        if (!cr.ok()) {
          r.fail();
          return std::nullopt;
        }
        Ipv4 ip;
        for (std::size_t i = 0; i < 4; ++i) ip.octets[i] = a[i];
        f.remote_addr = ip;
        break;
      }
      case kCompPortRange: {
        f.remote_port_lo = cr.u16();
        f.remote_port_hi = cr.u16();
        break;
      }
      default:
        r.fail();
        return std::nullopt;
    }
    if (!cr.ok()) {
      r.fail();
      return std::nullopt;
    }
  }
  if (f.remote_port_lo && *f.remote_port_hi < *f.remote_port_lo) {
    r.fail();
    return std::nullopt;
  }
  return f;
}

bool PacketFilter::matches(IpProtocol proto, const Ipv4& addr,
                           std::uint16_t port, Direction dir) const {
  if (direction != Direction::kBidirectional && dir != direction) return false;
  if (protocol != IpProtocol::kAny && proto != protocol) return false;
  if (remote_addr && !(addr == *remote_addr)) return false;
  if (remote_port_lo) {
    const std::uint16_t hi = remote_port_hi.value_or(*remote_port_lo);
    if (port < *remote_port_lo || port > hi) return false;
  }
  return true;
}

void Tft::encode(Writer& w) const {
  w.u8(static_cast<std::uint8_t>(op));
  w.u8(static_cast<std::uint8_t>(filters.size()));
  for (const auto& f : filters) f.encode(w);
}

std::optional<Tft> Tft::decode(Reader& r) {
  Tft t;
  const std::uint8_t op = r.u8();
  if (op < 1 || op > 5) {
    r.fail();
    return std::nullopt;
  }
  t.op = static_cast<Operation>(op);
  const std::uint8_t n = r.u8();
  for (std::uint8_t i = 0; i < n; ++i) {
    const auto f = PacketFilter::decode(r);
    if (!f) return std::nullopt;
    t.filters.push_back(*f);
  }
  if (!r.ok()) return std::nullopt;
  return t;
}

bool Tft::semantically_valid() const {
  if ((op == Operation::kCreateNew || op == Operation::kReplaceFilters ||
       op == Operation::kAddFilters) &&
      filters.empty()) {
    return false;
  }
  for (std::size_t i = 0; i < filters.size(); ++i) {
    for (std::size_t j = i + 1; j < filters.size(); ++j) {
      if (filters[i].id == filters[j].id) return false;
    }
  }
  return true;
}

void QosRule::encode(Writer& w) const {
  w.u8(fiveqi);
  w.u32(mbr_ul_kbps);
  w.u32(mbr_dl_kbps);
}

std::optional<QosRule> QosRule::decode(Reader& r) {
  QosRule q;
  q.fiveqi = r.u8();
  q.mbr_ul_kbps = r.u32();
  q.mbr_dl_kbps = r.u32();
  if (!r.ok()) return std::nullopt;
  return q;
}

bool is_standard_5qi(std::uint8_t v) {
  // Standardized 5QI values from TS 23.501 Table 5.7.4-1 (subset).
  switch (v) {
    case 1: case 2: case 3: case 4: case 5: case 6: case 7: case 8: case 9:
    case 65: case 66: case 67: case 69: case 70: case 75: case 79: case 80:
    case 82: case 83: case 84: case 85: case 86:
      return true;
    default:
      return false;
  }
}

}  // namespace seed::nas
