// 5G NAS message definitions and codecs (TS 24.501-style).
//
// Wire layout:
//   5GMM: EPD(0x7e) | security-header(1B, 0 = plain) | msg-type | body
//   5GSM: EPD(0x2e) | pdu-session-id | pti | msg-type | body
// Bodies are mandatory fields in fixed order followed by optional IEs as
// (tag, lv8) TLVs. decode_message() never throws on malformed input; it
// returns nullopt (the Reader pattern from common/codec.h).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "common/bytes.h"
#include "common/codec.h"
#include "nas/causes.h"
#include "nas/ie.h"

namespace seed::nas {

inline constexpr std::uint8_t kEpd5gmm = 0x7e;
inline constexpr std::uint8_t kEpd5gsm = 0x2e;

enum class MsgType : std::uint8_t {
  // 5GMM
  kRegistrationRequest = 0x41,
  kRegistrationAccept = 0x42,
  kRegistrationReject = 0x44,
  kDeregistrationRequest = 0x45,
  kServiceRequest = 0x4c,
  kServiceReject = 0x4d,
  kServiceAccept = 0x4e,
  kConfigurationUpdateCommand = 0x54,
  kAuthenticationRequest = 0x56,
  kAuthenticationResponse = 0x57,
  kAuthenticationReject = 0x58,
  kAuthenticationFailure = 0x59,
  kSecurityModeCommand = 0x5d,
  kSecurityModeComplete = 0x5e,
  // 5GSM
  kPduSessionEstablishmentRequest = 0xc1,
  kPduSessionEstablishmentAccept = 0xc2,
  kPduSessionEstablishmentReject = 0xc3,
  kPduSessionModificationRequest = 0xc9,
  kPduSessionModificationReject = 0xcb,
  kPduSessionModificationCommand = 0xcc,
  kPduSessionReleaseRequest = 0xd1,
  kPduSessionReleaseCommand = 0xd3,
  kPduSessionReleaseComplete = 0xd4,
};

std::string_view msg_type_name(MsgType t);

// ------------------------------------------------------------------ 5GMM

struct RegistrationRequest {
  MobileIdentity identity;
  bool follow_on_request = false;
  std::vector<SNssai> requested_nssai;
  std::optional<Tai> last_visited_tai;
};

struct RegistrationAccept {
  Guti guti;
  std::vector<Tai> tai_list;
  std::vector<SNssai> allowed_nssai;
  std::uint32_t t3512_seconds = 3240;
};

struct RegistrationReject {
  std::uint8_t cause = 0;  // MmCause
  std::optional<std::uint32_t> t3502_seconds;
};

struct DeregistrationRequest {
  bool switch_off = false;
};

struct ServiceRequest {
  std::uint8_t service_type = 0;  // 0 signalling, 1 data
};

struct ServiceAccept {};

struct ServiceReject {
  std::uint8_t cause = 0;  // MmCause
};

/// Mutual-authentication challenge. SEED's downlink covert channel sets
/// rand = DFlag (all 0xFF) and carries an encrypted fragment in autn
/// (paper §4.5, Fig. 7a).
struct AuthenticationRequest {
  std::uint8_t ngksi = 0;
  std::array<std::uint8_t, 16> rand{};
  std::array<std::uint8_t, 16> autn{};
};

struct AuthenticationResponse {
  Bytes res;  // RES* (8..16 bytes)
};

struct AuthenticationReject {};

/// cause 21 (synch failure) doubles as SEED's downlink ACK (Fig. 7a).
struct AuthenticationFailure {
  std::uint8_t cause = 0;  // MmCause (20 MAC failure / 21 synch failure)
  std::optional<std::array<std::uint8_t, 14>> auts;
};

struct SecurityModeCommand {
  std::uint8_t ea = 2;  // 128-EEA2
  std::uint8_t ia = 2;  // 128-EIA2
};

struct SecurityModeComplete {};

struct ConfigurationUpdateCommand {
  std::optional<Guti> guti;
  std::vector<Tai> tai_list;
};

// ------------------------------------------------------------------ 5GSM

/// Common 5GSM header fields.
struct SmHeader {
  std::uint8_t pdu_session_id = 0;
  std::uint8_t pti = 0;  // procedure transaction identity
};

/// SEED's uplink covert channel embeds encrypted diagnosis fragments in
/// the DNN ("DIAG"-prefixed labels, paper §4.5, Fig. 7b).
struct PduSessionEstablishmentRequest {
  SmHeader hdr;
  PduSessionType type = PduSessionType::kIpv4;
  SscMode ssc = SscMode::kMode1;
  Dnn dnn;
  std::optional<SNssai> snssai;
};

struct PduSessionEstablishmentAccept {
  SmHeader hdr;
  PduSessionType type = PduSessionType::kIpv4;
  Ipv4 ue_addr;
  Ipv4 dns_addr;
  QosRule qos;
  std::optional<Tft> tft;
};

/// Also used as the network's ACK for an uplink diagnosis DNN (Fig. 7b).
struct PduSessionEstablishmentReject {
  SmHeader hdr;
  std::uint8_t cause = 0;  // SmCause
  std::optional<std::uint32_t> backoff_seconds;
};

struct PduSessionModificationRequest {
  SmHeader hdr;
  std::optional<Tft> tft;
  std::optional<QosRule> qos;
};

struct PduSessionModificationReject {
  SmHeader hdr;
  std::uint8_t cause = 0;  // SmCause
};

struct PduSessionModificationCommand {
  SmHeader hdr;
  std::optional<Tft> tft;
  std::optional<QosRule> qos;
  std::optional<Ipv4> dns_addr;
};

struct PduSessionReleaseRequest {
  SmHeader hdr;
};

struct PduSessionReleaseCommand {
  SmHeader hdr;
  std::uint8_t cause =
      static_cast<std::uint8_t>(SmCause::kRegularDeactivation);
};

struct PduSessionReleaseComplete {
  SmHeader hdr;
};

// ------------------------------------------------------------- dispatch

using NasMessage = std::variant<
    RegistrationRequest, RegistrationAccept, RegistrationReject,
    DeregistrationRequest, ServiceRequest, ServiceAccept, ServiceReject,
    AuthenticationRequest, AuthenticationResponse, AuthenticationReject,
    AuthenticationFailure, SecurityModeCommand, SecurityModeComplete,
    ConfigurationUpdateCommand, PduSessionEstablishmentRequest,
    PduSessionEstablishmentAccept, PduSessionEstablishmentReject,
    PduSessionModificationRequest, PduSessionModificationReject,
    PduSessionModificationCommand, PduSessionReleaseRequest,
    PduSessionReleaseCommand, PduSessionReleaseComplete>;

/// Serializes any NAS message to wire bytes.
Bytes encode_message(const NasMessage& msg);

/// Allocation-free encode: serializes into `scratch` (cleared first,
/// capacity kept) and returns a view of the wire bytes. The view is valid
/// until the next use of `scratch`. Steady state allocates nothing once
/// the scratch capacity has warmed up to the largest message seen.
BytesView encode_message_into(const NasMessage& msg, Bytes& scratch);

/// Why a decode rejected its input. kNone means the decode succeeded;
/// every nullopt return maps to exactly one non-kNone reason, so callers
/// can account for rejects without re-parsing.
enum class DecodeError : std::uint8_t {
  kNone = 0,
  kTruncated,          // input ended before a required field
  kBadProtocol,        // unknown extended protocol discriminator
  kBadSecurityHeader,  // 5GMM security header type not plain
  kUnknownType,        // message type octet not one we speak
  kBadFieldValue,      // a field decoded but held an invalid value
  kTrailingBytes,      // valid message followed by trailing garbage
};

std::string_view decode_error_name(DecodeError e);

/// Parses wire bytes; nullopt on any malformed input (wrong EPD, unknown
/// type, truncated body, trailing garbage, invalid field values).
std::optional<NasMessage> decode_message(BytesView data);

/// Same parse, but reports the reject reason through `err` (set to
/// kNone on success). Never leaves `err` unset.
std::optional<NasMessage> decode_message(BytesView data, DecodeError* err);

/// Message type of an in-memory message (for logging/stats).
MsgType message_type(const NasMessage& msg);

/// True for 5GSM messages (data-plane management).
bool is_sm_message(MsgType t);

/// True for the reject/failure messages that carry standardized causes —
/// the signal SEED's infra plugin hooks (paper §4.3.1).
bool carries_cause(MsgType t);

/// Extracts the (plane, cause) pair when the message carries one.
std::optional<std::pair<Plane, std::uint8_t>> extract_cause(
    const NasMessage& msg);

}  // namespace seed::nas
