#include "seedproto/failure_report.h"

#include <stdexcept>

#include "common/codec.h"
#include "obs/prof.h"

namespace seed::proto {

namespace {
constexpr std::size_t kMaxLabel = 63;  // DNS-style label limit
// Payload capacity per DNN fragment (one 63-byte + one 29-byte label);
// pack() never exceeds it and feed_view() rejects anything larger.
constexpr std::size_t kPerDnnPayload = 92;
const Bytes kDiagTag = {'D', 'I', 'A', 'G'};
}  // namespace

std::string_view failure_type_name(FailureType t) {
  switch (t) {
    case FailureType::kDns: return "DNS";
    case FailureType::kTcp: return "TCP";
    case FailureType::kUdp: return "UDP";
    case FailureType::kNoConnection: return "NO-CONNECTION";
  }
  return "invalid";
}

Bytes FailureReport::encode() const {
  Writer w;
  encode_into(w);
  return std::move(w).take();
}

void FailureReport::encode_into(Writer& w) const {
  w.u8(static_cast<std::uint8_t>(type));
  w.u8(static_cast<std::uint8_t>(direction));
  std::uint8_t flags = 0;
  if (addr) flags |= 0x01;
  if (port) flags |= 0x02;
  if (!domain.empty()) flags |= 0x04;
  w.u8(flags);
  if (addr) w.raw(BytesView(addr->octets.data(), addr->octets.size()));
  if (port) w.u16(*port);
  if (!domain.empty()) {
    const std::size_t body = w.lv8_begin();
    w.str(domain);
    w.lv8_end(body);
  }
}

std::optional<FailureReport> FailureReport::decode(BytesView data) {
  Reader r(data);
  FailureReport f;
  const std::uint8_t type = r.u8();
  if (type < 1 || type > 4) return std::nullopt;
  f.type = static_cast<FailureType>(type);
  const std::uint8_t dir = r.u8();
  if (dir < 1 || dir > 3) return std::nullopt;
  f.direction = static_cast<TrafficDirection>(dir);
  const std::uint8_t flags = r.u8();
  if (flags & ~0x07) return std::nullopt;
  if (flags & 0x01) {
    const BytesView a = r.raw(4);
    if (!r.ok()) return std::nullopt;
    nas::Ipv4 ip;
    for (std::size_t i = 0; i < 4; ++i) ip.octets[i] = a[i];
    f.addr = ip;
  }
  if (flags & 0x02) f.port = r.u16();
  if (flags & 0x04) {
    f.domain = to_string(r.lv8());
    if (f.domain.empty()) return std::nullopt;
  }
  if (!r.done()) return std::nullopt;
  return f;
}

bool DiagDnnCodec::is_diag(const nas::Dnn& dnn) {
  if (dnn.labels().empty()) return false;
  const Bytes& first = dnn.labels()[0];
  if (first.size() < kDiagTag.size()) return false;
  return std::equal(kDiagTag.begin(), kDiagTag.end(), first.begin());
}

// DNN fragment layout:
//   label 0: "DIAG" + 1 header byte (seq << 4 | total)
//   labels 1..: payload slices, each <= 63 bytes.
// Per-DNN payload budget: kMaxWireSize(100) - (1 + 5 label0) = 94 bytes of
// label space; each payload label costs 1 length byte.
std::vector<nas::Dnn> DiagDnnCodec::pack(BytesView frame) {
  PROF_ZONE("seedproto.fragment");
  PROF_BYTES(frame.size());
  // Payload capacity per DNN: remaining wire budget minus per-label length
  // bytes. With 94 bytes of wire left we fit one 63-byte label (64 wire)
  // and one 29-byte label (30 wire) = 92 payload bytes... keep it simple:
  // two labels max, capacity = 63 + 29 = 92 (kPerDnnPayload).
  const std::size_t total =
      frame.empty() ? 1 : (frame.size() + kPerDnnPayload - 1) / kPerDnnPayload;
  if (total > 15) {
    throw std::length_error("DiagDnnCodec: report too large (15 DNN max)");
  }
  std::vector<nas::Dnn> out;
  std::size_t pos = 0;
  for (std::size_t seq = 0; seq < total; ++seq) {
    Bytes head = kDiagTag;
    head.push_back(static_cast<std::uint8_t>((seq << 4) | total));
    std::vector<Bytes> labels = {head};
    std::size_t budget = std::min(kPerDnnPayload, frame.size() - pos);
    while (budget > 0) {
      const std::size_t n = std::min(budget, kMaxLabel);
      labels.emplace_back(frame.begin() + static_cast<std::ptrdiff_t>(pos),
                          frame.begin() + static_cast<std::ptrdiff_t>(pos + n));
      pos += n;
      budget -= n;
    }
    nas::Dnn dnn = nas::Dnn::from_labels(std::move(labels));
    if (dnn.wire_size() > nas::Dnn::kMaxWireSize) {
      throw std::logic_error("DiagDnnCodec: exceeded DNN wire budget");
    }
    out.push_back(std::move(dnn));
  }
  return out;
}

void DiagDnnCodec::Reassembler::reset() {
  buffer_.clear();
  expected_total_ = 0;
  received_ = 0;
  last_completed_total_ = 0;
}

std::optional<Bytes> DiagDnnCodec::Reassembler::feed(const nas::Dnn& dnn) {
  const auto view = feed_view(dnn);
  if (!view) return std::nullopt;
  return Bytes(view->begin(), view->end());
}

std::optional<BytesView> DiagDnnCodec::Reassembler::reject() {
  reset();
  last_rejected_ = true;
  return std::nullopt;
}

std::optional<BytesView> DiagDnnCodec::Reassembler::feed_view(
    const nas::Dnn& dnn) {
  PROF_ZONE("seedproto.reassemble");
  PROF_BYTES(dnn.wire_size());
  last_rejected_ = false;
  if (!is_diag(dnn) || dnn.labels()[0].size() != kDiagTag.size() + 1) {
    return reject();
  }
  const std::uint8_t header = dnn.labels()[0][kDiagTag.size()];
  const std::uint8_t seq = header >> 4;
  const std::uint8_t total = header & 0x0f;
  if (total == 0 || seq >= total) return reject();
  // A multi-fragment frame always carries payload labels; a bare header
  // mid-stream is a truncated fragment — drop the transfer rather than
  // mis-assemble (the sender re-requests on the next ACK round).
  if (total > 1 && dnn.labels().size() < 2) return reject();
  if (received_ == 0) {
    if (seq != 0) {
      if (total == last_completed_total_ && seq == total - 1) {
        // Retransmit of the final fragment of the transfer that just
        // completed (its ACK was lost in flight): a benign duplicate,
        // not a malformed fragment. The completed frame's view stays
        // untouched.
        return std::nullopt;
      }
      return reject();
    }
    // Lazily drop the previous transfer's bytes (kept alive so the view
    // returned at its completion stayed valid). clear() keeps capacity, so
    // steady-state reassembly allocates nothing.
    buffer_.clear();
    expected_total_ = total;
  } else if (seq == received_ - 1 && total == expected_total_) {
    // Exact re-send of the fragment just consumed (duplicated PDU
    // request): ignore it without disturbing the in-progress transfer.
    return std::nullopt;
  } else if (seq != received_ || total != expected_total_) {
    // Reordered or cross-transfer fragment: drop the partial frame and
    // resynchronize on the next seq-0 fragment.
    return reject();
  }
  // Audit hardening: pack() emits at most kPerDnnPayload (92) payload
  // bytes per DNN in labels of <= kMaxLabel bytes. Without the bound a
  // forged fragment could grow the frame far past any packed report and
  // feed downstream decoders attacker-sized input.
  std::size_t payload = 0;
  for (std::size_t i = 1; i < dnn.labels().size(); ++i) {
    const Bytes& l = dnn.labels()[i];
    if (l.size() > kMaxLabel) return reject();
    payload += l.size();
  }
  if (payload > kPerDnnPayload) return reject();
  for (std::size_t i = 1; i < dnn.labels().size(); ++i) {
    const Bytes& l = dnn.labels()[i];
    buffer_.insert(buffer_.end(), l.begin(), l.end());
  }
  ++received_;
  if (received_ < expected_total_) return std::nullopt;
  // Transfer complete. The buffer is kept (cleared lazily at the start of
  // the next transfer) so the returned view stays valid until the next
  // feed()/feed_view()/reset() call.
  last_completed_total_ = expected_total_;
  expected_total_ = 0;
  received_ = 0;
  return BytesView(buffer_.data(), buffer_.size());
}

}  // namespace seed::proto
