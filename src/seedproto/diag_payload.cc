#include "seedproto/diag_payload.h"

#include <stdexcept>

#include "common/codec.h"
#include "obs/prof.h"

namespace seed::proto {

bool is_dflag(const std::array<std::uint8_t, 16>& rand) {
  for (std::uint8_t b : rand) {
    if (b != 0xff) return false;
  }
  return true;
}

std::string_view reset_action_name(ResetAction a) {
  switch (a) {
    case ResetAction::kNone: return "none";
    case ResetAction::kA1ProfileReload: return "A1:sim-profile-reload";
    case ResetAction::kA2CPlaneConfigUpdate: return "A2:cplane-config-update";
    case ResetAction::kA3DPlaneConfigUpdate: return "A3:dplane-config-update";
    case ResetAction::kB1ModemReset: return "B1:modem-reset";
    case ResetAction::kB2CPlaneReattach: return "B2:cplane-reattach";
    case ResetAction::kB3DPlaneReset: return "B3:dplane-reset";
    case ResetAction::kNotifyUser: return "notify-user";
  }
  return "invalid";
}

Bytes DiagInfo::encode() const {
  Writer w;
  encode_into(w);
  return std::move(w).take();
}

void DiagInfo::encode_into(Writer& w) const {
  w.u8(static_cast<std::uint8_t>(kind));
  w.u8(plane == nas::Plane::kControl ? 0 : 1);
  w.u8(cause);
  std::uint8_t flags = 0;
  if (config) flags |= 0x01;
  if (suggested) flags |= 0x02;
  if (congestion_wait_s) flags |= 0x04;
  w.u8(flags);
  if (config) {
    w.u8(static_cast<std::uint8_t>(config->kind));
    w.lv8(config->value);
  }
  if (suggested) w.u8(static_cast<std::uint8_t>(*suggested));
  if (congestion_wait_s) w.u16(*congestion_wait_s);
}

std::optional<DiagInfo> DiagInfo::decode(BytesView data) {
  Reader r(data);
  DiagInfo d;
  const std::uint8_t kind = r.u8();
  if (kind < 1 || kind > 6) return std::nullopt;
  d.kind = static_cast<AssistKind>(kind);
  const std::uint8_t plane = r.u8();
  if (plane > 1) return std::nullopt;
  d.plane = plane == 0 ? nas::Plane::kControl : nas::Plane::kData;
  d.cause = r.u8();
  const std::uint8_t flags = r.u8();
  if (flags & ~0x07) return std::nullopt;
  if (flags & 0x01) {
    const std::uint8_t ck = r.u8();
    if (ck > static_cast<std::uint8_t>(nas::ConfigKind::kInvalidOrMissedConfig)) {
      return std::nullopt;
    }
    ConfigPayload cp;
    cp.kind = static_cast<nas::ConfigKind>(ck);
    const BytesView value = r.lv8();
    cp.value.assign(value.begin(), value.end());
    d.config = std::move(cp);
  }
  if (flags & 0x02) {
    const std::uint8_t a = r.u8();
    if (a > static_cast<std::uint8_t>(ResetAction::kNotifyUser)) {
      return std::nullopt;
    }
    d.suggested = static_cast<ResetAction>(a);
  }
  if (flags & 0x04) d.congestion_wait_s = r.u16();
  if (!r.done()) return std::nullopt;
  return d;
}

// Fragment layout (16 bytes each):
//   byte 0: seq (hi nibble) | total (lo nibble), seq in [0, total), total >= 1
//   fragment 0: byte 1 = total frame length (<= 224), bytes 2.. payload
//   fragment k>0: bytes 1.. payload
namespace {

constexpr std::size_t kFirstPayload = 14;
constexpr std::size_t kRestPayload = 15;

// Unzoned fragmentation core: both public wrappers open the
// "seedproto.fragment" zone exactly once (the profiler counts a call per
// begin(), even reentrant), then delegate here.
void fragment_core(BytesView frame,
                   std::vector<std::array<std::uint8_t, 16>>& out) {
  if (frame.size() > kFirstPayload + 14 * kRestPayload) {
    throw std::length_error("AutnCodec: frame too large for 15 fragments");
  }
  std::size_t total = 1;
  if (frame.size() > kFirstPayload) {
    total = 1 + (frame.size() - kFirstPayload + kRestPayload - 1) / kRestPayload;
  }
  out.clear();
  std::size_t pos = 0;
  for (std::size_t seq = 0; seq < total; ++seq) {
    std::array<std::uint8_t, 16> frag{};
    frag[0] = static_cast<std::uint8_t>((seq << 4) | total);
    std::size_t off = 1;
    if (seq == 0) {
      frag[1] = static_cast<std::uint8_t>(frame.size());
      off = 2;
    }
    for (std::size_t i = off; i < 16 && pos < frame.size(); ++i) {
      frag[i] = frame[pos++];
    }
    out.push_back(frag);
  }
}

}  // namespace

std::vector<std::array<std::uint8_t, 16>> AutnCodec::fragment(
    BytesView frame) {
  PROF_ZONE("seedproto.fragment");
  PROF_BYTES(frame.size());
  std::vector<std::array<std::uint8_t, 16>> out;
  fragment_core(frame, out);
  return out;
}

void AutnCodec::fragment_into(BytesView frame,
                              std::vector<std::array<std::uint8_t, 16>>& out) {
  PROF_ZONE("seedproto.fragment");
  PROF_BYTES(frame.size());
  fragment_core(frame, out);
}

void AutnCodec::Reassembler::reset() {
  buffer_.clear();
  expected_total_ = 0;
  received_ = 0;
  last_len_ = 0;
  last_completed_total_ = 0;
}

std::optional<Bytes> AutnCodec::Reassembler::feed(
    const std::array<std::uint8_t, 16>& autn) {
  const auto view = feed_view(autn);
  if (!view) return std::nullopt;
  return Bytes(view->begin(), view->end());
}

std::optional<BytesView> AutnCodec::Reassembler::reject() {
  reset();
  last_rejected_ = true;
  return std::nullopt;
}

std::optional<BytesView> AutnCodec::Reassembler::feed_view(
    const std::array<std::uint8_t, 16>& autn) {
  PROF_ZONE("seedproto.reassemble");
  PROF_BYTES(autn.size());
  last_rejected_ = false;
  const std::uint8_t seq = autn[0] >> 4;
  const std::uint8_t total = autn[0] & 0x0f;
  if (total == 0 || seq >= total) return reject();
  if (received_ == 0) {
    if (seq != 0) {
      if (total == last_completed_total_ && seq == total - 1) {
        // Retransmit of the final fragment of the transfer that just
        // completed (its ACK was lost in flight): a benign duplicate,
        // not a malformed fragment. The completed frame's view stays
        // untouched.
        return std::nullopt;
      }
      return reject();
    }
    // Lazily drop the previous transfer's bytes (kept alive so the view
    // returned at its completion stayed valid). clear() keeps capacity, so
    // steady-state reassembly allocates nothing.
    buffer_.clear();
    expected_total_ = total;
    last_len_ = autn[1];
    // Audit hardening: the declared frame length must be *consistent with
    // the declared fragment count* — a `total`-fragment transfer only
    // exists for frames too long for total-1 fragments, and can never
    // exceed total fragments' capacity. A forged header that passes the
    // old upper-bound-only check could otherwise splice a short frame out
    // of a longer transfer's bytes.
    if (total > 1 &&
        last_len_ <= kFirstPayload + kRestPayload * (total - 2u)) {
      return reject();
    }
    if (last_len_ > kFirstPayload + kRestPayload * (total - 1u)) {
      return reject();
    }
    for (std::size_t i = 2; i < 16; ++i) buffer_.push_back(autn[i]);
  } else {
    if (seq == received_ - 1 && total == expected_total_) {
      // Duplicate of the fragment just consumed (retransmitted or
      // duplicated Authentication Request): ACKed upstream but ignored
      // here, keeping the in-progress transfer intact.
      return std::nullopt;
    }
    if (seq != received_ || total != expected_total_) return reject();
    for (std::size_t i = 1; i < 16; ++i) buffer_.push_back(autn[i]);
  }
  ++received_;
  if (received_ < expected_total_) return std::nullopt;
  if (last_len_ > buffer_.size()) return reject();
  // Transfer complete. The buffer is kept (cleared lazily at the start of
  // the next transfer) so the returned view stays valid until the next
  // feed()/feed_view()/reset() call.
  last_completed_total_ = expected_total_;
  expected_total_ = 0;
  received_ = 0;
  return BytesView(buffer_.data(), last_len_);
}

}  // namespace seed::proto
