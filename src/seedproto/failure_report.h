// Uplink failure report (SIM -> infrastructure) and its transport inside
// the DNN field of PDU Session Establishment Requests (paper §4.3.2 for
// the report API, §4.5 / Fig. 7b for the channel).
//
// Report fields mirror the app-facing API: (failure type, traffic
// direction, address), where address is IP+port for TCP/UDP and a domain
// name for DNS. The protected frame (SecurityContext) is packed into DNN
// labels: label 0 is "DIAG" plus a fragment header, remaining labels carry
// payload bytes. One DNN is capped at 100 wire bytes (paper: "The 100B DNN
// size is sufficient"); longer reports fragment across multiple
// consecutive requests, exactly as the paper's experiments validated.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/codec.h"
#include "nas/ie.h"

namespace seed::proto {

enum class FailureType : std::uint8_t {
  kDns = 1,
  kTcp = 2,
  kUdp = 3,
  kNoConnection = 4,  // Android "data stall" style report
};

std::string_view failure_type_name(FailureType t);

enum class TrafficDirection : std::uint8_t {
  kUplink = 1,
  kDownlink = 2,
  kBoth = 3,
};

struct FailureReport {
  FailureType type = FailureType::kDns;
  TrafficDirection direction = TrafficDirection::kBoth;
  std::optional<nas::Ipv4> addr;      // TCP/UDP
  std::optional<std::uint16_t> port;  // TCP/UDP
  std::string domain;                 // DNS
  bool operator==(const FailureReport&) const = default;

  Bytes encode() const;
  /// Appends the encoding to `w` (arena/scratch-backed Writers make the
  /// hot path allocation-free).
  void encode_into(Writer& w) const;
  static std::optional<FailureReport> decode(BytesView data);
};

/// Packs/unpacks protected frames into diagnosis DNNs.
class DiagDnnCodec {
 public:
  /// True when the DNN is a SEED diagnosis DNN (first label "DIAG"-headed).
  static bool is_diag(const nas::Dnn& dnn);

  /// Splits `frame` into one or more DNNs, each <= Dnn::kMaxWireSize.
  /// Throws std::length_error when more than 15 DNNs would be needed.
  static std::vector<nas::Dnn> pack(BytesView frame);

  /// Streaming reassembly across consecutive requests.
  class Reassembler {
   public:
    /// Returns the full frame when the final fragment arrives.
    std::optional<Bytes> feed(const nas::Dnn& dnn);
    /// Zero-copy variant: the returned view aliases the reassembler's
    /// internal buffer and stays valid until the next feed()/feed_view()/
    /// reset() call.
    std::optional<BytesView> feed_view(const nas::Dnn& dnn);
    void reset();
    /// True when the most recent feed()/feed_view() *rejected* its input
    /// (malformed or inconsistent fragment). False for the benign nullopt
    /// cases — mid-transfer progress and duplicate-of-last — so receivers
    /// can account for genuinely malformed traffic.
    bool last_rejected() const { return last_rejected_; }

   private:
    std::optional<BytesView> reject();

    Bytes buffer_;
    std::uint8_t expected_total_ = 0;
    std::uint8_t received_ = 0;
    /// Fragment count of the transfer that last completed; a retransmit
    /// of its final fragment (lost ACK) is a benign duplicate.
    std::uint8_t last_completed_total_ = 0;
    bool last_rejected_ = false;
  };
};

}  // namespace seed::proto
