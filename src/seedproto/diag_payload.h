// Downlink diagnosis-assistance payload (infrastructure -> SIM) and its
// transport over standard Authentication Request messages (paper §4.5,
// Fig. 7a; assistance types from §5.2).
//
// The infrastructure builds a DiagInfo, protects it with the in-SIM key
// (crypto::SecurityContext: EEA2 + EIA2 + counter), then fragments the
// protected frame into 16-byte AUTN fields. Each Authentication Request
// carries RAND = DFlag (all 0xFF) and one fragment; the SIM ACKs each
// round with Authentication Failure (cause 21, synch failure).
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <vector>

#include "common/bytes.h"
#include "common/codec.h"
#include "nas/causes.h"
#include "nas/ie.h"

namespace seed::proto {

/// Reserved RAND value marking a diagnosis-carrying Auth Request.
inline constexpr std::array<std::uint8_t, 16> kDFlag = {
    0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff,
    0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff};

bool is_dflag(const std::array<std::uint8_t, 16>& rand);

/// The four assistance-information types of §5.2 plus the customized-cause
/// variants used by online learning (§5.3).
enum class AssistKind : std::uint8_t {
  kStandardCause = 1,        // cause code only (§4.3)
  kCauseWithConfig = 2,      // cause + up-to-date configuration (§4.3)
  kSuggestedAction = 3,      // customized failure + suggested reset (§5.2)
  kCongestionWarning = 4,    // back off for `congestion_wait_s` (§5.2)
  kCustomCauseNoAction = 5,  // unknown handling -> online learning (§5.3)
  kHardwareResetRequest = 6, // passive timeout branch of Fig. 8
};

/// Configuration attached to a config-related cause (Appendix A). The
/// value holds the encoded IE for the kind (Dnn, SNssai, Tft, ...).
struct ConfigPayload {
  nas::ConfigKind kind = nas::ConfigKind::kNone;
  Bytes value;
  bool operator==(const ConfigPayload&) const = default;
};

/// Multi-tier reset actions (paper Fig. 5). Shared by seedproto (wire
/// encoding of suggested actions) and the seed core (decision logic).
enum class ResetAction : std::uint8_t {
  kNone = 0,
  kA1ProfileReload = 1,       // w/o root: SIM profile reload
  kA2CPlaneConfigUpdate = 2,  // w/o root: control-plane config update
  kA3DPlaneConfigUpdate = 3,  // w/o root: data-plane config update
  kB1ModemReset = 4,          // w/ root: AT+CFUN modem reset
  kB2CPlaneReattach = 5,      // w/ root: AT+CGATT reattach
  kB3DPlaneReset = 6,         // w/ root: fast data-plane reset/modification
  kNotifyUser = 7,            // user action required (expired plan, ...)
};

std::string_view reset_action_name(ResetAction a);

/// Downlink assistance message body (plaintext, pre-protection).
struct DiagInfo {
  AssistKind kind = AssistKind::kStandardCause;
  nas::Plane plane = nas::Plane::kControl;
  std::uint8_t cause = 0;  // standardized code or customized code
  std::optional<ConfigPayload> config;        // kCauseWithConfig
  std::optional<ResetAction> suggested;       // kSuggestedAction
  std::optional<std::uint16_t> congestion_wait_s;  // kCongestionWarning
  bool operator==(const DiagInfo&) const = default;

  Bytes encode() const;
  /// Appends the encoding to `w` (arena/scratch-backed Writers make the
  /// hot path allocation-free).
  void encode_into(Writer& w) const;
  static std::optional<DiagInfo> decode(BytesView data);
};

/// Splits a protected frame into 16-byte AUTN fragments.
/// Fragment layout: 1 header byte (seq << 4 | total) + 15 payload bytes
/// (last fragment zero-padded; true length restored from the header of
/// fragment 0, which stores the final-fragment payload length instead of
/// seq — see implementation). Max frame = 15 * 15 = 225 bytes.
class AutnCodec {
 public:
  static constexpr std::size_t kFragmentPayload = 15;
  static constexpr std::size_t kMaxFrame = 15 * kFragmentPayload;

  /// Throws std::length_error when the frame exceeds kMaxFrame.
  static std::vector<std::array<std::uint8_t, 16>> fragment(BytesView frame);

  /// Reusable-buffer variant: clears `out` and refills it, keeping its
  /// capacity across transfers (per-UE frag queues stay allocation-free).
  static void fragment_into(BytesView frame,
                            std::vector<std::array<std::uint8_t, 16>>& out);

  /// Streaming reassembler. Feed fragments in order; returns the full
  /// frame once complete. Out-of-order or inconsistent fragments reset
  /// the state and return nullopt.
  class Reassembler {
   public:
    std::optional<Bytes> feed(const std::array<std::uint8_t, 16>& autn);
    /// Zero-copy variant: the returned view aliases the reassembler's
    /// internal buffer and stays valid until the next feed()/feed_view()/
    /// reset() call.
    std::optional<BytesView> feed_view(const std::array<std::uint8_t, 16>& autn);
    void reset();
    std::size_t pending_fragments() const { return received_; }
    /// True when the most recent feed()/feed_view() *rejected* its input
    /// (malformed or inconsistent fragment). False for the benign nullopt
    /// cases — mid-transfer progress and duplicate-of-last — so receivers
    /// can account for genuinely malformed traffic.
    bool last_rejected() const { return last_rejected_; }

   private:
    std::optional<BytesView> reject();

    Bytes buffer_;
    std::uint8_t expected_total_ = 0;
    std::uint8_t received_ = 0;
    std::uint8_t last_len_ = 0;
    /// Fragment count of the transfer that last completed; a retransmit
    /// of its final fragment (lost ACK) is a benign duplicate.
    std::uint8_t last_completed_total_ = 0;
    bool last_rejected_ = false;
  };
};

}  // namespace seed::proto
