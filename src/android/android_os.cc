#include "android/android_os.h"

#include "common/params.h"
#include "simcore/log.h"

namespace seed::android {

AndroidOs::AndroidOs(sim::Simulator& sim, sim::Rng& rng,
                     transport::TrafficEngine& traffic, modem::Modem& modem)
    : sim_(sim), rng_(rng), traffic_(traffic), modem_(modem),
      retry_timer_(sim) {}

void AndroidOs::start() {
  if (probing_) return;
  probing_ = true;
  // Stagger the first probe so devices don't align.
  sim_.schedule_after(
      sim::secs_f(rng_.uniform(
          1.0, sim::to_seconds(params::kPortalProbePeriod))),
      [this] { evaluate(); });
}

void AndroidOs::evaluate() {
  if (!probing_) return;
  if (detection_enabled_) {
    // Captive-portal probe: HTTPS fetch of the check URL. The portal
    // host's address is cached, so a broken resolver does NOT fail the
    // probe — DNS failures are only caught by the consecutive-timeout
    // rule below, fed by (sparse, cache-missing) app lookups. This is
    // what makes Android's DNS/UDP detection minutes-slow (Fig. 3).
    traffic_.attempt_tcp(nas::Ipv4{{142, 250, 0, 1}}, 80,
                         [this](bool portal_ok) {
      const bool tcp_bad =
          traffic_.tcp_fail_rate(params::kTcpStatsWindow) >=
              params::kTcpFailRateThreshold &&
          traffic_.tcp_outbound(params::kTcpStatsWindow) > 3;
      const bool tcp_quiet =
          traffic_.tcp_outbound(params::kTcpStatsWindow) >=
              params::kTcpOutboundThreshold &&
          traffic_.tcp_inbound(params::kTcpStatsWindow) == 0;
      const bool dns_bad =
          traffic_.consecutive_dns_timeouts(params::kDnsWindow) >=
          params::kDnsTimeoutThreshold;
      const bool bad = !portal_ok || tcp_bad || tcp_quiet || dns_bad;
      if (bad) {
        // Two consecutive bad evaluations before declaring a stall —
        // Android's confirmation re-probe behaviour.
        if (++bad_evaluations_ >= 2 && !stall_active_) on_stall();
      } else {
        bad_evaluations_ = 0;
        stall_active_ = false;
      }
    });
  }
  sim_.schedule_after(
      sim::secs_f(sim::to_seconds(params::kPortalProbePeriod) / 2 *
                  rng_.uniform(0.9, 1.1)),
      [this] { evaluate(); });
}

void AndroidOs::on_stall() {
  stall_active_ = true;
  ++stats_.stalls_detected;
  last_stall_ = sim_.now();
  SLOG(kDebug, "android") << "data stall detected";
  if (stall_handler_) stall_handler_();
  if (retry_enabled_) run_retry_step(0);
}

void AndroidOs::run_retry_step(int step) {
  if (traffic_.path_healthy()) {
    stall_active_ = false;
    return;  // recovered; abort the escalation
  }
  sim::Duration wait{};
  if (timers_ == RetryTimers::kDefault) {
    wait = params::kAndroidDefaultActionInterval;
  } else {
    wait = step == 0   ? params::kAndroidRecommended1
           : step == 1 ? params::kAndroidRecommended2
                       : params::kAndroidRecommended3;
  }
  retry_timer_.arm(wait, [this, step] {
    if (traffic_.path_healthy()) {
      stall_active_ = false;
      return;
    }
    switch (step) {
      case 0:
        // Clean up and restart all TCP connections. Transport-level only:
        // cellular-stack failures are untouched (§3.3).
        ++stats_.retries_tcp_restart;
        SLOG(kDebug, "android") << "escalation step 1: restart TCP";
        run_retry_step(1);
        break;
      case 1:
        ++stats_.retries_reregister;
        SLOG(kDebug, "android") << "escalation step 2: re-register";
        modem_.trigger_reattach();
        run_retry_step(2);
        break;
      case 2:
        ++stats_.retries_modem_restart;
        SLOG(kDebug, "android") << "escalation step 3: modem restart";
        modem_.at_modem_reset([this](bool) {
          if (!traffic_.path_healthy()) {
            // Start over (Android loops the escalation).
            run_retry_step(0);
          } else {
            stall_active_ = false;
          }
        });
        break;
      default:
        break;
    }
  });
}

CarrierApp::CarrierApp(applet::SeedApplet& applet, bool device_rooted)
    : applet_(applet), rooted_(device_rooted) {
  // Runtime-API root detection -> notify the SIM to enable SEED-R (§6).
  applet_.on_root_status(rooted_);
}

}  // namespace seed::android
