// Android-style data-stall detection and sequential-retry recovery
// (paper §2, §3.3), plus the carrier app that bridges apps/OS to the SEED
// applet (paper §6: failure report service + recovery action module).
//
// Detection classes (documented Android thresholds):
//   1. captive-portal probe failure (connectivitycheck-style HTTPS fetch)
//   2. TCP: >= 80% failure rate, or >= 10 outbound with 0 inbound, in the
//      last minute
//   3. DNS: 5 consecutive timeouts within 30 minutes
// Recovery: level-by-level sequential retry — clean/restart TCP, then
// re-register, then restart the modem — separated by the configured
// intervals (3 min default; 21/6/16 s "recommended" baseline).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>

#include "modem/modem.h"
#include "simapplet/applet.h"
#include "simcore/simulator.h"
#include "transport/traffic.h"

namespace seed::android {

enum class RetryTimers : std::uint8_t { kDefault, kRecommended };

struct AndroidStats {
  std::uint64_t stalls_detected = 0;
  std::uint64_t false_positives = 0;  // filled by tests/benches
  std::uint64_t retries_tcp_restart = 0;
  std::uint64_t retries_reregister = 0;
  std::uint64_t retries_modem_restart = 0;
};

class AndroidOs {
 public:
  AndroidOs(sim::Simulator& sim, sim::Rng& rng,
            transport::TrafficEngine& traffic, modem::Modem& modem);

  /// Starts the periodic portal probe + stats evaluation loop.
  void start();

  /// Benchmark hook: declare a stall right now (used where the experiment
  /// measures recovery, not detection — detection latency is Fig. 3).
  void force_stall() { on_stall(); }

  void set_detection_enabled(bool on) { detection_enabled_ = on; }
  /// Legacy sequential retry on/off (off when SEED handles recovery).
  void set_sequential_retry_enabled(bool on) { retry_enabled_ = on; }
  void set_retry_timers(RetryTimers t) { timers_ = t; }
  /// SEED path: the carrier app forwards the stall to the applet.
  void set_stall_handler(std::function<void()> fn) {
    stall_handler_ = std::move(fn);
  }

  /// Time of the most recent stall detection (for Fig. 3 latency).
  std::optional<sim::TimePoint> last_stall_at() const { return last_stall_; }
  void clear_stall_record() { last_stall_ = std::nullopt; }

  const AndroidStats& stats() const { return stats_; }

 private:
  void evaluate();
  void on_stall();
  void run_retry_step(int step);

  sim::Simulator& sim_;
  sim::Rng& rng_;
  transport::TrafficEngine& traffic_;
  modem::Modem& modem_;

  bool detection_enabled_ = true;
  bool retry_enabled_ = true;
  RetryTimers timers_ = RetryTimers::kDefault;
  std::function<void()> stall_handler_;

  bool probing_ = false;
  bool stall_active_ = false;
  int bad_evaluations_ = 0;
  std::optional<sim::TimePoint> last_stall_;
  sim::Timer retry_timer_;
  AndroidStats stats_;
};

/// Carrier app (paper §6): receives app failure reports and OS stall
/// notifications, forwards them to the SIM applet, detects root to enable
/// SEED-R, and executes A3 config updates with UICC privilege (the applet
/// reaches it through ModemControl, which the modem implements here).
class CarrierApp {
 public:
  CarrierApp(applet::SeedApplet& applet, bool device_rooted);

  /// App-facing failure report API (§4.3.2).
  void report_failure(const proto::FailureReport& report) {
    applet_.report_failure(report);
  }
  /// Connectivity-diagnostics callback path.
  void on_data_stall() { applet_.on_os_data_stall(); }

  bool rooted() const { return rooted_; }

 private:
  applet::SeedApplet& applet_;
  bool rooted_;
};

}  // namespace seed::android
