#include "eval/accuracy.h"

#include <algorithm>
#include <array>
#include <cstdio>
#include <map>
#include <ostream>
#include <string>

namespace seed::eval {
namespace {

using core::CauseFamily;
using core::kCauseFamilyCount;

std::size_t idx(CauseFamily f) { return static_cast<std::size_t>(f); }

/// Fixed-precision double rendering so the committed JSON is
/// byte-deterministic across standard libraries.
std::string fixed6(double v) {
  std::array<char, 32> buf{};
  std::snprintf(buf.data(), buf.size(), "%.6f", v);
  return std::string(buf.data());
}

}  // namespace

double AccuracyReport::precision(CauseFamily f) const {
  // All scored first-verdicts that predicted f, across every true row.
  std::uint64_t predicted_f = 0;
  for (const FamilyScore& row : families) predicted_f += row.predicted[idx(f)];
  if (predicted_f == 0) return 0.0;
  return static_cast<double>(families[idx(f)].correct) /
         static_cast<double>(predicted_f);
}

double AccuracyReport::recall(CauseFamily f) const {
  const FamilyScore& row = families[idx(f)];
  if (row.injected == 0) return 0.0;
  return static_cast<double>(row.correct) /
         static_cast<double>(row.injected);
}

bool action_cures_custom(std::uint8_t plane, std::uint8_t action) {
  switch (action) {
    case 1: case 4: case 5:  // A1 / B1 / B2: fresh-identity registration
      return true;
    case 3: case 6:          // A3 / B3: make-before-break d-plane reset
      return plane == 1;
    default:
      return false;
  }
}

AccuracyReport score(const std::vector<obs::Event>& events) {
  AccuracyReport report;

  // Pass 1: ground truth. Label -> true family, in injection order.
  std::map<std::uint32_t, CauseFamily> truth;
  for (const obs::Event& e : events) {
    if (e.kind != obs::EventKind::kGroundTruthLabel || e.label == 0) continue;
    const auto family = static_cast<CauseFamily>(e.cause);
    if (idx(family) >= kCauseFamilyCount) continue;
    if (truth.emplace(e.label, family).second) {
      ++report.labels;
      ++report.families[idx(family)].injected;
    }
  }

  // Pass 2: verdicts, stream order. First verdict per label scores it.
  std::map<std::uint32_t, bool> scored;
  struct CurveAcc {
    std::uint64_t decisions = 0;
    std::uint64_t correct = 0;
  };
  std::map<std::uint32_t, CurveAcc> curve;  // learner depth -> tally
  for (const obs::Event& e : events) {
    if (e.kind != obs::EventKind::kDiagnosisVerdict) continue;
    ++report.verdicts_total;
    const auto verdict = core::verdict_from_event(e);
    const auto it = e.label != 0 ? truth.find(e.label) : truth.end();
    if (!verdict || it == truth.end()) {
      ++report.verdicts_unattributed;
      continue;
    }
    if (scored[e.label]) continue;  // already graded by its first verdict
    scored[e.label] = true;

    const CauseFamily true_family = it->second;
    const CauseFamily predicted = core::predicted_family(*verdict);
    FamilyScore& row = report.families[idx(true_family)];
    ++row.diagnosed;
    ++report.diagnosed;
    ++row.predicted[idx(predicted)];
    if (predicted == true_family) {
      ++row.correct;
      ++report.correct;
    }

    // Convergence: custom-cause decisions graded on action quality.
    if (true_family == CauseFamily::kCustomUnknown) {
      CurveAcc& acc = curve[verdict->learner_records];
      ++acc.decisions;
      if (action_cures_custom(verdict->plane, verdict->action)) {
        ++acc.correct;
      }
    }
  }

  // Undiagnosed labels land in the kNone column of their true row.
  for (const auto& [label, family] : truth) {
    if (!scored[label]) {
      ++report.families[idx(family)].predicted[idx(CauseFamily::kNone)];
    }
  }

  // Curve: ascending learner depth with cumulative accuracy. Aggregating
  // by depth (not stream position) makes the curve independent of how
  // fleet shards interleave, so merged runs stay byte-deterministic.
  std::uint64_t cum_decisions = 0;
  std::uint64_t cum_correct = 0;
  for (const auto& [records, acc] : curve) {
    CurvePoint p;
    p.records = records;
    p.decisions = acc.decisions;
    p.correct = acc.correct;
    cum_decisions += acc.decisions;
    cum_correct += acc.correct;
    p.cum_decisions = cum_decisions;
    p.cum_correct = cum_correct;
    p.cum_accuracy = static_cast<double>(cum_correct) /
                     static_cast<double>(cum_decisions);
    report.curve.push_back(p);
  }
  return report;
}

std::array<double, 4> curve_quartiles(const AccuracyReport& report) {
  std::array<double, 4> out{};
  const std::size_t n = report.curve.size();
  if (n == 0) return out;
  for (std::size_t q = 0; q < 4; ++q) {
    const std::size_t i =
        std::min(n - 1, ((q + 1) * n) / 4 == 0 ? 0 : ((q + 1) * n) / 4 - 1);
    out[q] = report.curve[i].cum_accuracy;
  }
  return out;
}

bool curve_within_band(const AccuracyReport& report,
                       const std::array<double, 4>& expected,
                       double tolerance) {
  const auto actual = curve_quartiles(report);
  for (std::size_t q = 0; q < 4; ++q) {
    const double delta = actual[q] - expected[q];
    if (delta > tolerance || delta < -tolerance) return false;
  }
  return true;
}

void write_json(std::ostream& os, const AccuracyReport& report) {
  os << "{\n";
  os << "  \"labels\": " << report.labels << ",\n";
  os << "  \"diagnosed\": " << report.diagnosed << ",\n";
  os << "  \"correct\": " << report.correct << ",\n";
  os << "  \"overall_accuracy\": " << fixed6(report.overall_accuracy())
     << ",\n";
  os << "  \"verdicts_total\": " << report.verdicts_total << ",\n";
  os << "  \"verdicts_unattributed\": " << report.verdicts_unattributed
     << ",\n";
  os << "  \"families\": {";
  bool first_family = true;
  for (std::size_t f = 1; f < kCauseFamilyCount; ++f) {
    const FamilyScore& row = report.families[f];
    bool any_predicted = false;
    for (const std::uint64_t c : row.predicted) any_predicted |= c != 0;
    if (row.injected == 0 && !any_predicted) continue;
    if (!first_family) os << ",";
    first_family = false;
    const auto family = static_cast<CauseFamily>(f);
    os << "\n    \"" << core::family_name(family) << "\": {"
       << "\"injected\": " << row.injected
       << ", \"diagnosed\": " << row.diagnosed
       << ", \"correct\": " << row.correct
       << ", \"precision\": " << fixed6(report.precision(family))
       << ", \"recall\": " << fixed6(report.recall(family))
       << ", \"confusion\": {";
    bool first_cell = true;
    for (std::size_t p = 0; p < kCauseFamilyCount; ++p) {
      if (row.predicted[p] == 0) continue;
      if (!first_cell) os << ", ";
      first_cell = false;
      os << "\"" << core::family_name(static_cast<CauseFamily>(p))
         << "\": " << row.predicted[p];
    }
    os << "}}";
  }
  os << "\n  },\n";
  os << "  \"convergence\": {\n";
  std::uint64_t decisions = 0;
  std::uint64_t correct = 0;
  if (!report.curve.empty()) {
    decisions = report.curve.back().cum_decisions;
    correct = report.curve.back().cum_correct;
  }
  os << "    \"decisions\": " << decisions << ",\n";
  os << "    \"correct\": " << correct << ",\n";
  os << "    \"final_accuracy\": " << fixed6(report.curve_final_accuracy())
     << ",\n";
  const auto quartiles = curve_quartiles(report);
  os << "    \"quartiles\": [" << fixed6(quartiles[0]) << ", "
     << fixed6(quartiles[1]) << ", " << fixed6(quartiles[2]) << ", "
     << fixed6(quartiles[3]) << "],\n";
  os << "    \"curve\": [";
  for (std::size_t i = 0; i < report.curve.size(); ++i) {
    const CurvePoint& p = report.curve[i];
    if (i != 0) os << ",";
    os << "\n      {\"records\": " << p.records << ", \"decisions\": "
       << p.decisions << ", \"correct\": " << p.correct
       << ", \"cum_accuracy\": " << fixed6(p.cum_accuracy) << "}";
  }
  if (!report.curve.empty()) os << "\n    ";
  os << "]\n  }\n}\n";
}

void print_text(std::ostream& os, const AccuracyReport& report) {
  os << "diagnosis accuracy: " << report.correct << "/" << report.labels
     << " labeled injections correct ("
     << fixed6(report.overall_accuracy() * 100.0) << "%), "
     << report.diagnosed << " diagnosed, " << report.verdicts_unattributed
     << " unattributed verdict(s)\n\n";
  os << "  true family             inj  diag corr  prec   recall  "
        "confusion (predicted: count)\n";
  for (std::size_t f = 1; f < kCauseFamilyCount; ++f) {
    const FamilyScore& row = report.families[f];
    bool any_predicted = false;
    for (const std::uint64_t c : row.predicted) any_predicted |= c != 0;
    if (row.injected == 0 && !any_predicted) continue;
    const auto family = static_cast<CauseFamily>(f);
    std::array<char, 96> head{};
    std::snprintf(head.data(), head.size(),
                  "  %-22s %5llu %5llu %4llu  %.3f  %.3f   ",
                  std::string(core::family_name(family)).c_str(),
                  static_cast<unsigned long long>(row.injected),
                  static_cast<unsigned long long>(row.diagnosed),
                  static_cast<unsigned long long>(row.correct),
                  report.precision(family), report.recall(family));
    os << head.data();
    bool first = true;
    for (std::size_t p = 0; p < kCauseFamilyCount; ++p) {
      if (row.predicted[p] == 0) continue;
      if (!first) os << ", ";
      first = false;
      os << core::family_name(static_cast<CauseFamily>(p)) << ":"
         << row.predicted[p];
    }
    if (first) os << "-";
    os << "\n";
  }
  if (!report.curve.empty()) {
    os << "\n  learner convergence (" << report.curve.back().cum_decisions
       << " custom-cause decisions):\n";
    os << "  records  decisions  correct  cum_accuracy\n";
    for (const CurvePoint& p : report.curve) {
      std::array<char, 64> buf{};
      std::snprintf(buf.data(), buf.size(),
                    "  %7u  %9llu  %7llu  %.6f\n", p.records,
                    static_cast<unsigned long long>(p.decisions),
                    static_cast<unsigned long long>(p.correct),
                    p.cum_accuracy);
      os << buf.data();
    }
  }
}

}  // namespace seed::eval
