// Diagnosis-accuracy scorer: joins ground-truth labels to diagnosis
// verdicts in a trace stream and produces per-cause confusion matrices,
// precision/recall, and online-learning convergence curves.
//
// Scoring rules (also documented in EXPERIMENTS.md):
//  * every kGroundTruthLabel event defines the true cause family of one
//    labeled injection (keyed by the 32-bit label);
//  * the FIRST kDiagnosisVerdict event carrying that label is the scored
//    diagnosis — later verdicts for the same label (retries, cache
//    replays on re-rejects) do not re-score it;
//  * a label with no verdict at all counts as undiagnosed (a recall
//    miss attributed to the "none" column);
//  * verdicts with no label (or a label no injection claimed) are
//    counted as unattributed, never scored.
//
// The convergence curve grades the §5.3 learner separately: for
// custom-cause injections the *family* is trivially right (the verdict
// says "customized cause"), so the curve instead asks whether the
// suggested action would actually cure the fault, as a function of how
// many crowd records the learner had absorbed at decision time.
#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>
#include <vector>

#include "obs/trace.h"
#include "seed/verdict.h"

namespace seed::eval {

/// One row of the confusion matrix (a true cause family).
struct FamilyScore {
  std::uint64_t injected = 0;   // labeled injections of this family
  std::uint64_t diagnosed = 0;  // of those, labels with >= 1 verdict
  std::uint64_t correct = 0;    // first verdict predicted this family
  /// Predicted-family counts for this true family; index 0 (kNone)
  /// collects both undiagnosed labels and unmappable verdicts.
  std::array<std::uint64_t, core::kCauseFamilyCount> predicted{};
};

/// One point of the learner convergence curve: all custom-cause
/// decisions made with exactly `records` crowd records absorbed.
struct CurvePoint {
  std::uint32_t records = 0;     // learner depth at decision time
  std::uint64_t decisions = 0;   // decisions made at this depth
  std::uint64_t correct = 0;     // of those, curing-action suggestions
  std::uint64_t cum_decisions = 0;
  std::uint64_t cum_correct = 0;
  double cum_accuracy = 0.0;     // cum_correct / cum_decisions
};

struct AccuracyReport {
  std::array<FamilyScore, core::kCauseFamilyCount> families{};
  std::uint64_t labels = 0;      // distinct labeled injections
  std::uint64_t diagnosed = 0;
  std::uint64_t correct = 0;
  std::uint64_t verdicts_total = 0;
  std::uint64_t verdicts_unattributed = 0;  // unlabeled / unknown label
  std::vector<CurvePoint> curve;  // ascending by `records`

  double overall_accuracy() const {
    return labels == 0 ? 0.0
                       : static_cast<double>(correct) /
                             static_cast<double>(labels);
  }
  /// Precision for predicted family f: correct_f / all predictions of f.
  double precision(core::CauseFamily f) const;
  /// Recall for true family f: correct_f / injected_f.
  double recall(core::CauseFamily f) const;
  /// Final cumulative accuracy of the convergence curve (0 if empty).
  double curve_final_accuracy() const {
    return curve.empty() ? 0.0 : curve.back().cum_accuracy;
  }
};

/// True when `action` (proto::ResetAction code) cures the testbed's
/// custom fault on `plane` (0 = control, 1 = data): CP custom faults are
/// cured by fresh-identity registrations (A1/B1/B2), DP custom faults
/// additionally by the make-before-break data-plane resets (A3/B3).
bool action_cures_custom(std::uint8_t plane, std::uint8_t action);

/// Scores a trace stream (live capture or JSONL import).
AccuracyReport score(const std::vector<obs::Event>& events);

/// Cumulative curve accuracy sampled at the 25/50/75/100% points of the
/// curve (by point index; 0s when the curve is empty).
std::array<double, 4> curve_quartiles(const AccuracyReport& report);

/// True when every sampled quartile of `report`'s curve lies within
/// `tolerance` of the expected value — the convergence band gate.
bool curve_within_band(const AccuracyReport& report,
                       const std::array<double, 4>& expected,
                       double tolerance);

/// Deterministic JSON rendering (committed as BENCH_accuracy.json).
void write_json(std::ostream& os, const AccuracyReport& report);

/// Human-readable confusion matrix + curve (trace_summary --accuracy).
void print_text(std::ostream& os, const AccuracyReport& report);

}  // namespace seed::eval
