// Scenario: an edge-AR application (the paper's most disruption-sensitive
// workload — 100 ms budget, no buffer) hits a UDP-blocking network
// misconfiguration, the failure class Android cannot even detect without
// DNS side effects (§3.3). The AR daemon uses SEED's failure report API
// (§4.3.2); the SIM ships the report over DIAG DNNs; the core validates
// it against the user policy, repairs the erroneous block, and modifies
// the session — all while the data plane is nominally "up".
//
//   ./build/examples/ar_streaming_recovery
#include <iostream>

#include "apps/app_model.h"
#include "metrics/table.h"
#include "testbed/testbed.h"

int main() {
  using namespace seed;
  using namespace seed::testbed;

  metrics::Table t({"Scheme", "Recovered", "AR outage (s)",
                    "Reports via DIAG DNN", "Notes"});

  for (device::Scheme scheme :
       {device::Scheme::kLegacy, device::Scheme::kSeedU,
        device::Scheme::kSeedR}) {
    Testbed tb(/*seed=*/777, scheme);
    tb.secondary_congestion_prob = 0;
    tb.bring_up();
    apps::App& ar = tb.dev().add_app(apps::edge_ar_app());
    tb.simulator().run_for(sim::seconds(20));

    const auto t0 = tb.simulator().now();
    const Outcome out = tb.run_delivery_failure(
        DeliveryFailure::kUdpBlock, sim::minutes(12),
        /*immediate_detection=*/scheme != device::Scheme::kLegacy);

    // Give the app a beat to see fresh frames after recovery.
    for (int guard = 0; guard < 30 && !ar.perceived_disruption(t0); ++guard) {
      tb.simulator().run_for(sim::seconds(1));
    }
    const double outage = ar.perceived_disruption(t0).value_or(
        sim::to_seconds(tb.simulator().now() - t0));

    std::string note;
    if (scheme == device::Scheme::kLegacy) {
      note = out.recovered ? "recovered (unexpectedly)"
                           : "UDP block invisible to Android; no recovery";
    } else if (scheme == device::Scheme::kSeedU) {
      note = out.recovered
                 ? "recovered"
                 : "A3 reset cannot fix a network-side policy (needs root)";
    } else {
      note = "report -> policy check -> session modification";
    }
    t.row({std::string(device::scheme_name(scheme)),
           out.recovered ? "yes" : "no",
           metrics::Table::num(outage, 1),
           std::to_string(tb.core().stats().diag_reports_rx), note});
  }

  std::cout << "Edge AR under an erroneous network-side UDP block:\n";
  t.print(std::cout);
  std::cout << "The AR daemon reports (type=UDP, direction, addr:port); the\n"
               "network finds the effective policy conflicting with the\n"
               "user's intended policy and repairs it (paper §4.4.2).\n";
  return 0;
}
