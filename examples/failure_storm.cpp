// Scenario: a congested cell during a failure storm. SEED must not make
// things worse: congestion warnings carry back-off timers the SIM obeys
// (§5.2), and the per-action rate limiter keeps reset signaling bounded
// (§4.4.2) even when failures arrive faster than recoveries.
//
//   ./build/examples/failure_storm
#include <iostream>

#include "metrics/table.h"
#include "testbed/testbed.h"

int main() {
  using namespace seed;
  using namespace seed::testbed;

  metrics::Table t({"Scheme", "Storm window", "Reg. attempts",
                    "Resets fired", "Rate-limited", "Healthy after"});

  for (device::Scheme scheme :
       {device::Scheme::kLegacy, device::Scheme::kSeedU}) {
    Testbed tb(31337, scheme);
    tb.secondary_congestion_prob = 0;
    tb.bring_up();

    // Five minutes of rolling congestion with repeated reattach triggers:
    // every 30 s the cell flips congested for ~20 s and the device is
    // bounced (handover churn). The clear is a tracked timer: arming a
    // new burst cancels any still-pending clear, so a stale timer from a
    // previous burst can never end the new one early (run_for only
    // advances *at least* 30 s — with a backlogged event queue the prior
    // clear can still be in flight when the next burst starts).
    sim::Timer congestion_clear(tb.simulator());
    for (int burst = 0; burst < 10; ++burst) {
      tb.core().faults().congested = true;
      congestion_clear.arm(sim::seconds(20), [&tb] {
        tb.core().faults().congested = false;
      });
      tb.dev().modem().trigger_reattach();
      tb.simulator().run_for(sim::seconds(30));
    }
    tb.simulator().run_for(sim::minutes(2));

    const auto& m = tb.dev().modem().stats();
    const auto& a = tb.dev().applet().stats();
    t.row({std::string(device::scheme_name(scheme)), "5 min x 10 bursts",
           std::to_string(m.registrations_attempted),
           std::to_string(a.actions_run),
           std::to_string(a.actions_rate_limited),
           tb.dev().traffic().path_healthy() ? "yes" : "no"});
  }
  std::cout << "Failure storm under rolling congestion:\n";
  t.print(std::cout);
  std::cout << "SEED's congestion warnings + rate limiter keep its own\n"
               "signaling bounded — the reset count stays far below the\n"
               "failure count, and the device ends healthy.\n";
  return 0;
}
