// Quickstart: build a full SEED testbed, inject a control-plane failure,
// and watch SEED diagnose it over the DFlag channel and recover with a
// multi-tier reset — with the protocol timeline printed.
//
//   ./build/examples/quickstart
#include <iostream>

#include "simcore/log.h"
#include "testbed/testbed.h"

int main() {
  using namespace seed;
  using namespace seed::testbed;

  std::cout << "SEED quickstart: identity-desync failure, SEED-U vs legacy\n";

  // ---- 1. Legacy handling: blind retries with the stale identity.
  {
    Testbed tb(/*seed=*/42, device::Scheme::kLegacy);
    tb.secondary_congestion_prob = 0;
    tb.bring_up();
    std::cout << "\n[legacy] device attached, data service healthy\n";
    const Outcome out = tb.run_cp_failure(CpFailure::kIdentityDesync);
    std::cout << "[legacy] cause #9 (UE identity cannot be derived): "
              << "recovered after " << out.disruption_s << " s, "
              << tb.dev().modem().stats().registrations_rejected
              << " rejected registration attempts\n";
  }

  // ---- 2. SEED-U: the SIM sees the cause code and reloads the profile.
  {
    Testbed tb(/*seed=*/42, device::Scheme::kSeedU);
    tb.secondary_congestion_prob = 0;
    tb.bring_up();
    std::cout << "\n[SEED-U] device attached, applet armed ("
              << tb.dev().applet().storage_used_bytes() / 1024
              << " KB of eSIM storage in use)\n";
    const Outcome out = tb.run_cp_failure(CpFailure::kIdentityDesync);
    const auto& st = tb.dev().applet().stats();
    std::cout << "[SEED-U] recovered after " << out.disruption_s << " s: "
              << st.diags_received << " diagnosis downlink(s), "
              << st.actions_run << " reset action(s) (A1 profile reload)\n";
    std::cout << "[SEED-U] core sent " << tb.core().stats().diag_downlinks
              << " assistance transfer(s) over DFlag Auth Requests\n";
  }

  // ---- 3. The same failure with full protocol logging (SEED-R).
  {
    std::cout << "\n[SEED-R] same failure with the event log on:\n";
    Testbed tb(/*seed=*/42, device::Scheme::kSeedR);
    tb.secondary_congestion_prob = 0;
    tb.bring_up();
    sim::Logger::instance().set_level(sim::LogLevel::kDebug);
    const Outcome out = tb.run_cp_failure(CpFailure::kIdentityDesync);
    sim::Logger::instance().set_level(sim::LogLevel::kOff);
    std::cout << "[SEED-R] recovered after " << out.disruption_s
              << " s via B1 modem reset\n";
  }

  std::cout << "\nDone. Try the bench/ binaries for the paper's tables and "
               "figures.\n";
  return 0;
}
