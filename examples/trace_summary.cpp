// Replays a failure-lifecycle trace (JSONL, as written by
// Tracer::export_jsonl or SEED_TRACE=<path> on the benches) into the
// per-failure span summary table, or — with --lifecycle — into each
// failure's causal tree (seq/parent links) with per-stage latencies.
//
//   ./build/examples/trace_summary trace.jsonl              # summary table
//   ./build/examples/trace_summary --lifecycle trace.jsonl  # causal trees
//   ./build/examples/trace_summary < trace.jsonl            # from stdin
//   ./build/examples/trace_summary --demo                   # generate one
//
// --demo runs a SEED-U testbed through a control-plane and a data-plane
// failure with the tracer on, exports the events through a JSONL
// round-trip, and summarizes them — the full pipeline in one binary.
//
// Malformed JSONL lines (truncated tails of a crashed run, hand-edit
// damage) are skipped and counted; any skipped line makes the exit code
// 2 so scripts notice partial input, while the valid records still
// render.
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/trace.h"
#include "testbed/testbed.h"

namespace {

using namespace seed;

std::vector<obs::Event> demo_events() {
  using namespace seed::testbed;
  auto& tracer = obs::Tracer::instance();
  tracer.enable(true);

  Testbed tb(/*seed=*/42, device::Scheme::kSeedU);
  tb.secondary_congestion_prob = 0;
  tb.bring_up();
  (void)tb.run_cp_failure(CpFailure::kIdentityDesync, sim::minutes(5));
  (void)tb.run_dp_failure(DpFailure::kOutdatedDnn, sim::minutes(5));

  // Round-trip through JSONL so --demo exercises the same path as
  // replaying a file.
  std::stringstream buf;
  tracer.export_jsonl(buf);
  return obs::Tracer::import_jsonl(buf);
}

void print_totals(std::ostream& os, const std::vector<obs::Event>& events) {
  std::size_t counts[static_cast<int>(obs::EventKind::kSloAlert) + 1] = {};
  for (const obs::Event& e : events) ++counts[static_cast<int>(e.kind)];
  os << "event totals:";
  for (int k = 0; k <= static_cast<int>(obs::EventKind::kSloAlert); ++k) {
    if (counts[k] == 0) continue;
    os << ' ' << obs::event_kind_name(static_cast<obs::EventKind>(k)) << '='
       << counts[k];
  }
  os << '\n';
}

}  // namespace

int main(int argc, char** argv) {
  bool lifecycle = false;
  bool demo = false;
  const char* path = nullptr;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--lifecycle") {
      lifecycle = true;
    } else if (arg == "--demo") {
      demo = true;
    } else {
      path = argv[i];
    }
  }

  obs::ImportStats stats;
  std::vector<obs::Event> events;
  if (demo) {
    events = demo_events();
  } else if (path != nullptr) {
    std::ifstream in(path);
    if (!in) {
      std::cerr << "trace_summary: cannot open " << path << '\n';
      return 1;
    }
    events = obs::Tracer::import_jsonl(in, &stats);
  } else {
    events = obs::Tracer::import_jsonl(std::cin, &stats);
  }

  if (stats.malformed != 0) {
    std::cerr << "trace_summary: skipped " << stats.malformed
              << " malformed line(s) of " << stats.lines << '\n';
  }
  if (events.empty()) {
    std::cerr << "trace_summary: no events (usage: trace_summary "
                 "[--lifecycle] [trace.jsonl | --demo])\n";
    return stats.malformed != 0 ? 2 : 1;
  }

  print_totals(std::cout, events);
  if (lifecycle) {
    const std::vector<obs::LifecycleTree> trees =
        obs::Tracer::build_lifecycle(std::move(events));
    std::cout << "reconstructed " << trees.size() << " lifecycle tree(s)\n";
    obs::Tracer::print_lifecycle(std::cout, trees);
  } else {
    const std::vector<obs::SpanSummary> spans =
        obs::Tracer::assemble(std::move(events));
    std::cout << "parsed " << spans.size() << " failure span(s)\n";
    obs::Tracer::print_summary(std::cout, spans);
  }
  return stats.malformed != 0 ? 2 : 0;
}
