// Replays a failure-lifecycle trace (JSONL, as written by
// Tracer::export_jsonl or SEED_TRACE=<path> on the benches) into the
// per-failure span summary table.
//
//   ./build/examples/trace_summary trace.jsonl     # from a file
//   ./build/examples/trace_summary < trace.jsonl   # from stdin
//   ./build/examples/trace_summary --demo          # generate one live
//
// --demo runs a SEED-U testbed through a control-plane and a data-plane
// failure with the tracer on, exports the events through a JSONL
// round-trip, and summarizes them — the full pipeline in one binary.
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/trace.h"
#include "testbed/testbed.h"

namespace {

using namespace seed;

std::vector<obs::Event> demo_events() {
  using namespace seed::testbed;
  auto& tracer = obs::Tracer::instance();
  tracer.enable(true);

  Testbed tb(/*seed=*/42, device::Scheme::kSeedU);
  tb.secondary_congestion_prob = 0;
  tb.bring_up();
  (void)tb.run_cp_failure(CpFailure::kIdentityDesync, sim::minutes(5));
  (void)tb.run_dp_failure(DpFailure::kOutdatedDnn, sim::minutes(5));

  // Round-trip through JSONL so --demo exercises the same path as
  // replaying a file.
  std::stringstream buf;
  tracer.export_jsonl(buf);
  return obs::Tracer::import_jsonl(buf);
}

void print_totals(std::ostream& os, const std::vector<obs::Event>& events) {
  std::size_t counts[static_cast<int>(obs::EventKind::kLog) + 1] = {};
  for (const obs::Event& e : events) ++counts[static_cast<int>(e.kind)];
  os << "event totals:";
  for (int k = 0; k <= static_cast<int>(obs::EventKind::kLog); ++k) {
    if (counts[k] == 0) continue;
    os << ' ' << obs::event_kind_name(static_cast<obs::EventKind>(k)) << '='
       << counts[k];
  }
  os << '\n';
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<obs::Event> events;
  if (argc > 1 && std::string(argv[1]) == "--demo") {
    events = demo_events();
  } else if (argc > 1) {
    std::ifstream in(argv[1]);
    if (!in) {
      std::cerr << "trace_summary: cannot open " << argv[1] << '\n';
      return 1;
    }
    events = obs::Tracer::import_jsonl(in);
  } else {
    events = obs::Tracer::import_jsonl(std::cin);
  }

  if (events.empty()) {
    std::cerr << "trace_summary: no events (usage: trace_summary "
                 "[trace.jsonl | --demo])\n";
    return 1;
  }

  print_totals(std::cout, events);
  const std::vector<obs::SpanSummary> spans =
      obs::Tracer::assemble(std::move(events));
  std::cout << "parsed " << spans.size() << " failure span(s)\n";
  obs::Tracer::print_summary(std::cout, spans);
  return 0;
}
