// Replays a failure-lifecycle trace (JSONL, as written by
// Tracer::export_jsonl or SEED_TRACE=<path> on the benches) into the
// per-failure span summary table, or — with --lifecycle — into each
// failure's causal tree (seq/parent links) with per-stage latencies.
//
//   ./build/examples/trace_summary trace.jsonl              # summary table
//   ./build/examples/trace_summary --lifecycle trace.jsonl  # causal trees
//   ./build/examples/trace_summary < trace.jsonl            # from stdin
//   ./build/examples/trace_summary --demo                   # generate one
//   ./build/examples/trace_summary --prof BENCH_profile.json # zone report
//   ./build/examples/trace_summary --accuracy labeled.jsonl # accuracy view
//   ./build/examples/trace_summary --to-binary t.jsonl > t.bin # encode TLV
//   ./build/examples/trace_summary --convert t.bin > t.jsonl   # decode TLV
//
// --accuracy joins kGroundTruthLabel events (labeled scenario packs) to
// the kDiagnosisVerdict stream and prints the per-cause confusion
// matrix, precision/recall, and learner convergence curve.
//
// --demo runs a SEED-U testbed through a control-plane and a data-plane
// failure with the tracer on, exports the events through a JSONL
// round-trip, and summarizes them — the full pipeline in one binary.
//
// Malformed JSONL lines (truncated tails of a crashed run, hand-edit
// damage) are skipped and counted; any skipped line makes the exit code
// 2 so scripts notice partial input, while the valid records still
// render.
//
// Binary captures (Tracer::export_binary, "SEEDTRC" magic) are
// auto-detected and decode through the same views; --convert re-emits a
// binary capture as JSONL on stdout for golden-diff tooling, and
// --to-binary encodes a JSONL trace as a binary capture on stdout (the
// two compose into the CI round-trip check). Corrupt
// binary input gets its own exit codes so scripts can triage: 3 = not a
// binary capture (--convert only), 4 = unknown version, 5 = truncated,
// 6 = over-length record, 7 = malformed record.
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/minijson.h"
#include "eval/accuracy.h"
#include "obs/trace.h"
#include "obs/trace_binary.h"
#include "testbed/testbed.h"

namespace {

using namespace seed;

std::vector<obs::Event> demo_events() {
  using namespace seed::testbed;
  auto& tracer = obs::Tracer::instance();
  tracer.enable(true);

  Testbed tb(/*seed=*/42, device::Scheme::kSeedU);
  tb.secondary_congestion_prob = 0;
  tb.bring_up();
  (void)tb.run_cp_failure(CpFailure::kIdentityDesync, sim::minutes(5));
  (void)tb.run_dp_failure(DpFailure::kOutdatedDnn, sim::minutes(5));

  // Round-trip through JSONL so --demo exercises the same path as
  // replaying a file.
  std::stringstream buf;
  tracer.export_jsonl(buf);
  return obs::Tracer::import_jsonl(buf);
}

void print_totals(std::ostream& os, const std::vector<obs::Event>& events) {
  constexpr int kMaxKind =
      static_cast<int>(obs::EventKind::kDiagnosisVerdict);
  std::size_t counts[kMaxKind + 1] = {};
  for (const obs::Event& e : events) ++counts[static_cast<int>(e.kind)];
  os << "event totals:";
  for (int k = 0; k <= kMaxKind; ++k) {
    if (counts[k] == 0) continue;
    os << ' ' << obs::event_kind_name(static_cast<obs::EventKind>(k)) << '='
       << counts[k];
  }
  os << '\n';
}

/// The prof_report view: renders a BENCH_profile[_full].json dump as a
/// per-zone cost table. Wall-time columns appear only when the dump
/// carries them (the *_full flavour); the committed deterministic dump
/// renders counts and bytes alone.
int prof_report(const char* path) {
  if (path == nullptr) {
    std::cerr << "trace_summary: --prof needs a profile json path\n";
    return 1;
  }
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::cerr << "trace_summary: cannot open " << path << '\n';
    return 1;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  if (buf.str().find_first_not_of(" \t\r\n") == std::string::npos) {
    std::cerr << "trace_summary: " << path << " is empty\n";
    return 1;
  }

  struct Row {
    std::string name;
    double calls, bytes, allocs, alloc_bytes, incl_us, excl_us;
    bool has_times;
  };
  std::vector<Row> rows;
  std::string workload;
  try {
    const minijson::Value doc = minijson::parse(buf.str());
    const minijson::Value& profile = doc.at("profile");
    workload = profile.at("workload").as_string();
    for (const minijson::Value& z : profile.at("zones").as_array()) {
      Row r{};
      r.name = z.at("name").as_string();
      r.calls = z.at("calls").as_number();
      r.bytes = z.at("bytes").as_number();
      r.allocs = z.at("allocs").as_number();
      r.alloc_bytes = z.at("alloc_bytes").as_number();
      if (const minijson::Value* t = z.find("excl_us")) {
        r.has_times = true;
        r.excl_us = t->as_number();
        r.incl_us = z.at("incl_us").as_number();
      }
      rows.push_back(std::move(r));
    }
  } catch (const std::exception& e) {
    std::cerr << "trace_summary: " << path << ": not a profile dump ("
              << e.what() << ")\n";
    return 2;
  }
  if (rows.empty()) {
    std::cerr << "trace_summary: " << path << ": no zones recorded "
              << "(profiler disabled during the run?)\n";
    return 1;
  }

  const bool times = rows.front().has_times;
  // Hottest first when wall time is available, busiest first otherwise.
  std::sort(rows.begin(), rows.end(), [times](const Row& a, const Row& b) {
    return times ? a.excl_us > b.excl_us : a.calls > b.calls;
  });
  std::printf("profile: %s (%zu zones)\n", workload.c_str(), rows.size());
  std::printf("%-22s %10s %12s %8s %12s %9s %9s", "zone", "calls", "bytes",
              "allocs", "alloc_bytes", "allocs/op", "bytes/op");
  if (times) std::printf(" %10s %10s %9s", "incl_ms", "excl_ms", "ns/call");
  std::printf("\n");
  for (const Row& r : rows) {
    // Per-op amortized columns: a steady-state zero here is the zero-copy
    // contract; a fraction just under 1 usually means warm-up-only growth.
    const double per_call = r.calls > 0 ? 1.0 / r.calls : 0.0;
    std::printf("%-22s %10.0f %12.0f %8.0f %12.0f %9.3f %9.1f",
                r.name.c_str(), r.calls, r.bytes, r.allocs, r.alloc_bytes,
                r.allocs * per_call, r.alloc_bytes * per_call);
    if (times) {
      std::printf(" %10.3f %10.3f %9.0f", r.incl_us / 1e3, r.excl_us / 1e3,
                  r.calls > 0 ? r.excl_us * 1e3 / r.calls : 0.0);
    }
    std::printf("\n");
  }
  return 0;
}

/// Script-visible triage for corrupt binary captures (the binary twin of
/// the JSONL empty=1/malformed=2 convention).
int binary_exit(obs::BinaryError e) {
  switch (e) {
    case obs::BinaryError::kNone: return 0;
    case obs::BinaryError::kBadMagic: return 3;
    case obs::BinaryError::kBadVersion: return 4;
    case obs::BinaryError::kTruncated: return 5;
    case obs::BinaryError::kOverLength: return 6;
    case obs::BinaryError::kMalformed: return 7;
  }
  return 7;
}

void report_binary_error(const char* what, const obs::BinaryStats& st) {
  std::cerr << "trace_summary: " << what << ": "
            << obs::binary_error_name(st.error)
            << " at byte offset " << st.error_offset << " ("
            << st.records << " event(s) decoded before the damage)\n";
}

}  // namespace

int main(int argc, char** argv) {
  bool lifecycle = false;
  bool demo = false;
  bool prof = false;
  bool accuracy = false;
  bool convert = false;
  bool to_binary = false;
  const char* path = nullptr;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--lifecycle") {
      lifecycle = true;
    } else if (arg == "--demo") {
      demo = true;
    } else if (arg == "--prof") {
      prof = true;
    } else if (arg == "--accuracy") {
      accuracy = true;
    } else if (arg == "--convert") {
      convert = true;
    } else if (arg == "--to-binary") {
      to_binary = true;
    } else {
      path = argv[i];
    }
  }
  if (prof) return prof_report(path);

  const char* what = path != nullptr ? path : "stdin";
  obs::ImportStats stats;
  obs::BinaryStats bstats;
  bool was_binary = false;
  std::vector<obs::Event> events;
  if (demo) {
    events = demo_events();
  } else {
    // Slurp the whole input (binary mode): format detection needs the
    // leading magic, and binary captures cannot stream line-by-line.
    std::string data;
    if (path != nullptr) {
      std::ifstream in(path, std::ios::binary);
      if (!in) {
        std::cerr << "trace_summary: cannot open " << path << '\n';
        return 1;
      }
      std::ostringstream buf;
      buf << in.rdbuf();
      data = std::move(buf).str();
    } else {
      std::ostringstream buf;
      buf << std::cin.rdbuf();
      data = std::move(buf).str();
    }
    was_binary = obs::looks_binary(data);
    if (was_binary) {
      events = obs::TraceReader::decode(data, &bstats);
    } else if (convert) {
      std::cerr << "trace_summary: " << what
                << ": not a binary trace capture (no SEEDTRC magic); "
                   "--convert takes Tracer::export_binary output\n";
      return binary_exit(obs::BinaryError::kBadMagic);
    } else {
      std::istringstream in(data);
      events = obs::Tracer::import_jsonl(in, &stats);
      // Feed line totals back so the empty-input diagnostics below work
      // on the slurped path too.
    }
  }

  if (was_binary && bstats.error != obs::BinaryError::kNone) {
    report_binary_error(what, bstats);
    return binary_exit(bstats.error);
  }
  if (to_binary) {
    obs::export_binary(std::cout, events);
    std::cerr << "trace_summary: encoded " << events.size()
              << " event(s) as a binary capture\n";
    return stats.malformed != 0 ? 2 : 0;
  }
  if (convert) {
    for (const obs::Event& e : events) {
      obs::export_event_jsonl(std::cout, e);
    }
    std::cerr << "trace_summary: converted " << events.size()
              << " event(s), " << bstats.strings << " interned string(s)\n";
    return 0;
  }

  if (stats.malformed != 0) {
    std::cerr << "trace_summary: skipped " << stats.malformed
              << " malformed line(s) of " << stats.lines << '\n';
  }
  if (events.empty()) {
    const char* what = path != nullptr ? path : "stdin";
    if (stats.lines == 0) {
      std::cerr << "trace_summary: " << what
                << " is empty — nothing to summarize (usage: trace_summary "
                   "[--lifecycle|--prof] [file | --demo])\n";
    } else {
      std::cerr << "trace_summary: no trace events in " << stats.lines
                << " line(s) of " << what << " ("
                << (stats.malformed != 0 ? "malformed input"
                                         : "not a trace JSONL?")
                << ")\n";
    }
    return stats.malformed != 0 ? 2 : 1;
  }

  print_totals(std::cout, events);
  if (accuracy) {
    const eval::AccuracyReport report = eval::score(events);
    if (report.labels == 0) {
      std::cerr << "trace_summary: no ground-truth labels in this trace "
                   "(run a labeled scenario pack with tracing on)\n";
      return 1;
    }
    eval::print_text(std::cout, report);
    return stats.malformed != 0 ? 2 : 0;
  }
  if (lifecycle) {
    const std::vector<obs::LifecycleTree> trees =
        obs::Tracer::build_lifecycle(std::move(events));
    std::cout << "reconstructed " << trees.size() << " lifecycle tree(s)\n";
    obs::Tracer::print_lifecycle(std::cout, trees);
  } else {
    const std::vector<obs::SpanSummary> spans =
        obs::Tracer::assemble(std::move(events));
    std::cout << "parsed " << spans.size() << " failure span(s)\n";
    obs::Tracer::print_summary(std::cout, spans);
  }
  return stats.malformed != 0 ? 2 : 0;
}
