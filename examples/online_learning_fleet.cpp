// Scenario: a fleet of devices meets an operator-customized failure no
// standardized cause covers (paper §5.3). Early devices walk Algorithm 1's
// trial ladder (B3 -> A3 -> B2 -> A2 -> B1 -> A1); their SIMs record what
// worked and upload the records OTA; the infrastructure's crowd-sourced
// NetRecord then suggests the right action to later devices with a
// probability that ramps along the sigmoid gate.
//
// The fleet runs in OTA waves on the FleetRunner pool: every device in a
// wave consults the model as it stood when the wave started (its shard
// gets a private NetRecord copy), and the wave's new records are folded
// back into the shared model in shard order before the next wave — the
// parallel-fleet equivalent of batched OTA uploads, deterministic for any
// thread count (SEED_FLEET_THREADS pins the pool).
//
//   ./build/examples/online_learning_fleet
#include <iostream>
#include <map>

#include "metrics/stats.h"
#include "metrics/table.h"
#include "seed/online_learning.h"
#include "simcore/fleet_runner.h"
#include "testbed/testbed.h"

int main(int argc, char** argv) {
  using namespace seed;
  using namespace seed::testbed;

  constexpr core::CustomCause kCause = 0xC9;  // a broken c-plane function
  constexpr int kWaves = 10;
  constexpr int kDevicesPerWave = 3;
  core::NetRecord learner(/*lr=*/0.25);

  std::size_t threads = sim::fleet_threads_from_env(0);
  if (threads == 0 && argc > 1) {
    threads = static_cast<std::size_t>(std::strtoul(argv[1], nullptr, 10));
  }
  const sim::FleetRunner fleet(threads);

  std::cout << "Fleet of devices hitting custom control-plane failure 0xC9\n"
            << "(unknown to the standardized cause registry), "
            << kWaves << " OTA waves x " << kDevicesPerWave
            << " devices:\n\n";

  struct DeviceOut {
    Outcome out;
    std::vector<core::SimRecordStore::Entry> contributed;
  };

  metrics::Table t({"Wave", "Suggest prob. before", "Mean disruption (s)",
                    "Records after", "Learned action"});
  for (int wave = 0; wave < kWaves; ++wave) {
    const double p_before = learner.suggestion_probability(kCause);
    const auto before_entries = learner.export_entries();

    const auto outs = fleet.map<DeviceOut>(
        kDevicesPerWave, [&](const sim::ShardInfo& info) {
          const auto device =
              static_cast<std::uint64_t>(wave) * kDevicesPerWave +
              info.index;
          // Private model copy: suggestions come from the wave-start
          // snapshot; new records are diffed out and merged after.
          core::NetRecord local = learner;
          Testbed tb(9000 + device * 37, device::Scheme::kSeedR);
          tb.secondary_congestion_prob = 0;
          tb.set_learner(&local);
          tb.bring_up();
          DeviceOut d;
          d.out = tb.run_custom_failure(nas::Plane::kControl, kCause,
                                        sim::minutes(12));
          // OTA upload: only what this device added on top of the
          // snapshot.
          std::map<std::pair<core::CustomCause, proto::ResetAction>,
                   std::uint32_t>
              delta;
          for (const auto& e : local.export_entries()) {
            delta[{e.cause, e.action}] = e.count;
          }
          for (const auto& e : before_entries) {
            delta[{e.cause, e.action}] -= e.count;
          }
          for (const auto& [key, count] : delta) {
            if (count > 0) {
              d.contributed.push_back(
                  core::SimRecordStore::Entry{key.first, key.second, count});
            }
          }
          return d;
        });

    // Crowd-source the wave's uploads in shard order (deterministic).
    metrics::Samples disruption;
    for (const DeviceOut& d : outs) {
      learner.absorb(d.contributed);
      if (d.out.recovered) disruption.add(d.out.disruption_s);
    }

    const auto best = learner.best_action(kCause);
    t.row({std::to_string(wave), metrics::Table::pct(p_before, 0),
           disruption.empty() ? "-" : metrics::Table::num(disruption.mean(), 1),
           std::to_string(learner.record_count(kCause)),
           best ? std::string(proto::reset_action_name(*best)) : "(none)"});
  }
  t.print(std::cout);

  std::cout << "\nEarly waves pay the trial-ladder cost; once the learner\n"
               "has seen enough OTA-uploaded records, the suggestion gate\n"
               "opens (sigmoid of record count x lr) and later waves get\n"
               "the B2 control-plane reattach immediately.\n";
  return 0;
}
