// Scenario: a fleet of devices meets an operator-customized failure no
// standardized cause covers (paper §5.3). Early devices walk Algorithm 1's
// trial ladder (B3 -> A3 -> B2 -> A2 -> B1 -> A1); their SIMs record what
// worked and upload the records OTA; the infrastructure's crowd-sourced
// NetRecord then suggests the right action to later devices with a
// probability that ramps along the sigmoid gate.
//
//   ./build/examples/online_learning_fleet
#include <iostream>

#include "metrics/table.h"
#include "seed/online_learning.h"
#include "testbed/testbed.h"

int main() {
  using namespace seed;
  using namespace seed::testbed;

  constexpr core::CustomCause kCause = 0xC9;  // a broken c-plane function
  constexpr int kFleetRounds = 30;
  core::NetRecord learner(/*lr=*/0.25);

  std::cout << "Fleet of devices hitting custom control-plane failure 0xC9\n"
            << "(unknown to the standardized cause registry):\n\n";

  metrics::Table t({"Round", "Suggest prob. before", "Disruption (s)",
                    "Records after", "Learned action"});
  for (int round = 0; round < kFleetRounds; ++round) {
    Testbed tb(9000 + static_cast<std::uint64_t>(round) * 37,
               device::Scheme::kSeedR);
    tb.secondary_congestion_prob = 0;
    tb.set_learner(&learner);
    tb.bring_up();
    const double p_before = learner.suggestion_probability(kCause);
    const Outcome out =
        tb.run_custom_failure(nas::Plane::kControl, kCause, sim::minutes(12));
    const auto best = learner.best_action(kCause);
    if (round < 5 || round % 5 == 0) {
      t.row({std::to_string(round), metrics::Table::pct(p_before, 0),
             out.recovered ? metrics::Table::num(out.disruption_s, 1) : "-",
             std::to_string(learner.record_count(kCause)),
             best ? std::string(proto::reset_action_name(*best)) : "(none)"});
    }
  }
  t.print(std::cout);

  std::cout << "\nEarly rounds pay the trial-ladder cost; once the learner\n"
               "has seen enough records, the suggestion gate opens\n"
               "(sigmoid of record count x lr) and later devices get the\n"
               "B2 control-plane reattach immediately.\n";
  return 0;
}
