// Scenario: the offline pipeline of §3.1 — generate a MobileInsight-style
// signaling corpus, write it to disk, read it back, and re-derive the
// failure statistics by parsing every NAS outcome message. This is the
// data the paper's Table 1 and Fig. 2 analysis start from.
//
//   ./build/examples/trace_analysis [procedures]
#include <cstdlib>
#include <fstream>
#include <iostream>

#include "metrics/table.h"
#include "nas/causes.h"
#include "simcore/rng.h"
#include "trace/dataset.h"

int main(int argc, char** argv) {
  using namespace seed;

  trace::GeneratorOptions opts;
  if (argc > 1) opts.procedures = static_cast<std::size_t>(std::atol(argv[1]));

  sim::Rng rng(0x5eed);
  const trace::Dataset ds = trace::generate_dataset(rng, opts);

  // Persist and reload, as the real collection pipeline would.
  const std::string path = "/tmp/seed_trace.bin";
  {
    const Bytes blob = ds.serialize();
    std::ofstream f(path, std::ios::binary);
    f.write(reinterpret_cast<const char*>(blob.data()),
            static_cast<std::streamsize>(blob.size()));
    std::cout << "wrote " << blob.size() << " bytes (" << ds.records.size()
              << " procedure records) to " << path << "\n";
  }
  Bytes blob;
  {
    std::ifstream f(path, std::ios::binary);
    blob.assign(std::istreambuf_iterator<char>(f),
                std::istreambuf_iterator<char>());
  }
  const auto reloaded = trace::Dataset::deserialize(blob);
  if (!reloaded) {
    std::cerr << "failed to reload dataset\n";
    return 1;
  }

  const trace::AnalysisResult res = trace::analyze(*reloaded);
  std::cout << "parsed " << res.procedures << " procedures, found "
            << res.failures << " failures ("
            << metrics::Table::pct(res.failure_ratio())
            << " failure ratio; paper: >10%)\n\n";

  for (nas::Plane plane : {nas::Plane::kControl, nas::Plane::kData}) {
    std::cout << (plane == nas::Plane::kControl ? "Control" : "Data")
              << "-plane top causes:\n";
    metrics::Table t({"#", "Cause", "Share of all failures"});
    for (const auto& c : res.top_causes(plane, 5)) {
      t.row({std::to_string(c.cause),
             std::string(nas::cause_name(c.plane, c.cause)),
             metrics::Table::pct(c.fraction_of_failures)});
    }
    t.print(std::cout);
  }

  std::cout << "Config-related causes (paper Appendix A) in this corpus: ";
  std::size_t config_related = 0;
  for (const auto& c : res.causes) {
    if (nas::config_kind_for(c.plane, c.cause) != nas::ConfigKind::kNone) {
      config_related += c.count;
    }
  }
  std::cout << metrics::Table::pct(
                   static_cast<double>(config_related) / res.failures)
            << " of failures could ship a fresh configuration with the "
               "cause code.\n";
  return 0;
}
